//! Work-stealing parallel exploration: [`ParallelSession`].
//!
//! The sequential [`crate::Session`] is bounded by one core: one frontier,
//! one term manager, one incremental solver. `ParallelSession` shards the
//! same exploration across N worker threads **without** making any of the
//! engine state `Sync`: the unit of work shipped between threads is a
//! plain-data [`Prescription`] (see [`crate::prescribe`]), and each worker
//! owns a complete engine — its own [`TermManager`], [`SolverBackend`],
//! and [`PathExecutor`] — on which any prescription can be replayed from
//! scratch.
//!
//! # Worker topology
//!
//! Every worker has a shard-local frontier (a [`PrescriptionStrategy`])
//! guarded by its own lock. A worker pushes the prescriptions spawned by
//! its own paths onto its own shard and pops from it LIFO-deep (under the
//! default depth-first policy); when its shard runs dry it *steals* from a
//! victim's shard cold end — the shallowest pending flip, i.e. the largest
//! unexplored subtree. Exploration terminates when every shard is empty
//! and no worker holds in-flight work.
//!
//! # Determinism
//!
//! Replaying a prescription is a pure function of the prescription itself:
//! the worker resets its term manager (restoring fresh handle numbering,
//! see [`TermManager::reset`]) and solves the flip query in a brand-new
//! backend from the builder's factory. Scheduling — worker count, steal
//! order, shard policy — therefore cannot change any individual result,
//! only which worker computes it. The merged output is sorted by
//! [`PathId`], which reproduces the sequential depth-first discovery
//! order, so the final [`Summary`] (and the [`PathRecord`] stream) is
//! byte-identical across 1/2/4/8 workers and across repeated runs, and its
//! path ordering — the sequence of branch-decision fingerprints — is
//! identical to the sequential session's discovery order. (Witness
//! *inputs* for a path are whichever model the solver returns; the
//! sequential session's long-lived incremental solver may pick a
//! different, equally valid model than the fresh replay context, exactly
//! as [`crate::BitblastBackend::fresh_per_query`] may.)
//!
//! The price of replay is re-executing each parent prefix once per spawned
//! flip (bounded by the early-stopping
//! [`PathExecutor::execute_prefix`]) and forgoing cross-query solver
//! incrementality; the parallel speedup has to buy that back, which it
//! does on multi-core hardware for the big Table I workloads (see the
//! `engines` bench). [`crate::SessionBuilder::warm_start`] claws most of
//! that price back *without* giving up determinism: each worker keeps a
//! bounded cache keyed by parent input that reuses the parent-prefix
//! trail and its bit-blast across consecutive prescriptions from the same
//! subtree, solving each flip in a disposable frame on top — bit-identical
//! results, cheaper replays (see [`crate::warm`] and ablation 3).
//!
//! # Canonical truncation
//!
//! A truncated run ([`crate::SessionBuilder::limit`]) is schedule-
//! independent too: it returns the `limit` **lowest-`PathId`** paths of the
//! full exploration — i.e. the exact prefix an unbounded run's merged
//! stream would start with — not the first `limit` paths that happened to
//! *finish*. Workers over-collect under a shrinking watermark (the
//! `limit`-th smallest materialized id so far): a prescription whose id
//! already exceeds the watermark can never enter the final prefix — and,
//! parents ordering before descendants, neither can anything it would
//! spawn — so it is pruned without replay, and the merged, `PathId`-sorted
//! record list is trimmed at the `limit`-th path. Query records ride the
//! same trim, so summaries and records of truncated runs are byte-identical
//! across 1..N workers, repeated runs, and shard policies.
//!
//! Replay errors obey the same cut: a truncated run keeps exploring past
//! an error and decides at merge time — the error surfaces iff its id
//! sorts before the `limit`-th path (i.e. the sequential engine would
//! have hit it before stopping); an error beyond the cut belongs to work
//! the truncated exploration never owed anyone and is dropped. Stopping
//! at the first error observed would make the outcome a race.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use binsym_smt::{SatResult, TermManager};

use crate::backend::{SolverBackend, StaticGate};
use crate::error::Error;
use crate::machine::{StepResult, TrailEntry};
use crate::memory::AddressPolicyKind;
use crate::metrics::{InstrumentationConfig, Instruments, Phase};
use crate::observe::{CheckpointEvent, NullObserver, Observer};
use crate::persist::{decode_seq, encode_seq, section, Dec, Document, Enc, PersistError, Wire};
use crate::prescribe::{Flip, PathId, PathRecord, Prescription};
use crate::session::{ErrorPath, PathExecutor, Progress, Summary};
use crate::strategy::{FrontierSnapshot, PrescriptionStrategy};
use crate::warm::WarmCache;

/// Factory producing one [`PathExecutor`] per worker thread.
pub type ExecutorFactory = Arc<dyn Fn() -> Result<Box<dyn PathExecutor>, Error> + Send + Sync>;
/// Factory producing a fresh [`SolverBackend`] per replayed prescription.
pub type BackendFactory = Arc<dyn Fn() -> Box<dyn SolverBackend> + Send + Sync>;
/// Factory producing one [`Observer`] per worker thread (argument: worker
/// index).
pub type ObserverFactory = Arc<dyn Fn(usize) -> Box<dyn Observer> + Send + Sync>;
/// Factory producing one shard-local frontier policy per worker thread
/// (argument: worker index).
pub type ShardStrategyFactory = Arc<dyn Fn(usize) -> Box<dyn PrescriptionStrategy> + Send + Sync>;

const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Prescription>();
    assert_send::<PathRecord>();
    assert_send::<Error>();
    assert_send::<TermManager>();
};

/// Result of replaying one prescription, as recorded by a worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct PrescriptionRecord {
    pub(crate) id: PathId,
    /// `Some` when a feasibility query was discharged (every non-root
    /// prescription), with its result.
    pub(crate) query: Option<SatResult>,
    /// The materialized path, when the flip was feasible.
    pub(crate) path: Option<PathRecord>,
}

impl Wire for PrescriptionRecord {
    fn encode(&self, enc: &mut Enc) {
        self.id.encode(enc);
        self.query.encode(enc);
        self.path.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, PersistError> {
        Ok(PrescriptionRecord {
            id: PathId::decode(dec)?,
            query: Option::decode(dec)?,
            path: Option::decode(dec)?,
        })
    }
}

/// What the session builder asked the run to persist: where to write
/// checkpoints (and how often, in merged paths) and/or which checkpoint to
/// resume from. Threaded from [`crate::SessionBuilder::checkpoint`] /
/// [`crate::SessionBuilder::resume`].
#[derive(Debug, Clone, Default)]
pub(crate) struct PersistPlan {
    pub(crate) checkpoint: Option<(PathBuf, u64)>,
    pub(crate) resume: Option<PathBuf>,
}

/// The run parameters a checkpoint is only valid under. `input_len`,
/// `fuel` and `limit` shape the result *content*, so a resume validates
/// them strictly; `workers` and `strategy` shape scheduling only (the
/// merge is canonical), so they are recorded for exact frontier restore
/// but a mismatch merely redistributes the pending bag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CheckpointMeta {
    input_len: u32,
    fuel: u64,
    limit: Option<u64>,
    workers: u64,
    strategy: String,
}

impl Wire for CheckpointMeta {
    fn encode(&self, enc: &mut Enc) {
        self.input_len.encode(enc);
        self.fuel.encode(enc);
        self.limit.encode(enc);
        self.workers.encode(enc);
        self.strategy.encode(enc);
    }

    fn decode(dec: &mut Dec<'_>) -> Result<Self, PersistError> {
        Ok(CheckpointMeta {
            input_len: u32::decode(dec)?,
            fuel: u64::decode(dec)?,
            limit: Option::decode(dec)?,
            workers: u64::decode(dec)?,
            strategy: String::decode(dec)?,
        })
    }
}

/// The committed results of a checkpointing run, guarded by one mutex that
/// doubles as the **commit lock**: a worker's whole commit — watermark
/// note, spawned children push, record append, in-flight slot clear, and
/// (every N paths) the checkpoint write itself — happens under this lock,
/// so a checkpoint never observes a half-committed prescription.
struct CheckpointLedger {
    records: Vec<PrescriptionRecord>,
    /// Prescriptions whose replay failed. Persisted as loose pending work:
    /// replay being pure, a resumed run re-replays them and deterministically
    /// re-derives the same typed [`Error`] — no error serialization needed.
    failed: Vec<Prescription>,
    /// Materialized paths committed so far (including restored ones).
    paths: u64,
    /// Paths committed since the last checkpoint write.
    since_write: u64,
}

/// Shared checkpointing state of one run.
struct CheckpointShared {
    ledger: Mutex<CheckpointLedger>,
    /// Per-worker in-flight slot: filled (under the shard lock) with a clone
    /// of every popped prescription, cleared when its commit lands. A
    /// checkpoint taken while holding all shard locks therefore sees every
    /// popped-but-uncommitted prescription here and persists it as loose
    /// pending work.
    slots: Vec<Mutex<Option<Prescription>>>,
    path: PathBuf,
    /// Write a checkpoint every this many newly committed paths.
    every: u64,
    meta: CheckpointMeta,
    /// Address policy of the run; persisted in its own section and
    /// validated strictly on resume (it shapes every trail, so a
    /// checkpoint is meaningless under a different policy).
    policy: AddressPolicyKind,
}

/// Everything a resume checkpoint seeds a run with.
struct ResumeSeed {
    records: Vec<PrescriptionRecord>,
    shards: Vec<FrontierSnapshot>,
    loose: Vec<Prescription>,
    watermark_ids: Vec<PathId>,
}

/// Loads and validates a checkpoint. Every failure — I/O, bad magic,
/// version mismatch, truncation, or a checkpoint taken under different
/// result-shaping parameters — is a typed [`Error::Persist`], never a
/// panic.
fn load_checkpoint(
    path: &Path,
    expect: &CheckpointMeta,
    expect_policy: AddressPolicyKind,
) -> Result<ResumeSeed, Error> {
    let doc = Document::read(path)?;
    let meta: CheckpointMeta = crate::persist::decode_one(doc.require(section::META)?)?;
    let policy: AddressPolicyKind = crate::persist::decode_one(doc.require(section::POLICY)?)?;
    if policy != expect_policy {
        return Err(PersistError::Mismatch {
            what: "checkpoint address policy differs from this session's",
        }
        .into());
    }
    if meta.input_len != expect.input_len {
        return Err(PersistError::Mismatch {
            what: "checkpoint input_len differs from this session's",
        }
        .into());
    }
    if meta.fuel != expect.fuel {
        return Err(PersistError::Mismatch {
            what: "checkpoint fuel differs from this session's",
        }
        .into());
    }
    if meta.limit != expect.limit {
        return Err(PersistError::Mismatch {
            what: "checkpoint path limit differs from this session's",
        }
        .into());
    }
    Ok(ResumeSeed {
        records: decode_seq(doc.require(section::RECORDS)?)?,
        shards: decode_seq(doc.require(section::PENDING)?)?,
        loose: decode_seq(doc.require(section::SLOTS)?)?,
        watermark_ids: decode_seq(doc.require(section::WATERMARK)?)?,
    })
}

/// Writes one atomic checkpoint of the run: committed records (from the
/// held ledger), every shard frontier, every in-flight slot, the failed
/// list, and the truncation watermark.
///
/// Caller holds the ledger (the commit lock); this function additionally
/// holds **all** shard locks simultaneously while reading frontiers and
/// slots, which — with `Frontier::acquire` filling a worker's slot under
/// the shard lock — makes the capture a consistent cut: every prescription
/// is in exactly one of RECORDS / PENDING / SLOTS. Lock order is
/// ledger → shards → slots → watermark; workers take at most shard → slot
/// without the ledger, so the hierarchy is acyclic.
fn write_checkpoint(
    ck: &CheckpointShared,
    ledger: &CheckpointLedger,
    state: &RunState,
) -> Result<u64, PersistError> {
    let guards: Vec<_> = state
        .frontier
        .shards
        .iter()
        .map(|s| s.lock().expect("shard lock"))
        .collect();
    let snapshots: Vec<FrontierSnapshot> = guards.iter().map(|g| g.snapshot()).collect();
    let mut loose: Vec<Prescription> = ck
        .slots
        .iter()
        .filter_map(|s| s.lock().expect("slot lock").clone())
        .collect();
    drop(guards);
    loose.extend(ledger.failed.iter().cloned());
    let mut watermark_ids: Vec<PathId> = match &state.watermark {
        Some(w) => w
            .lock()
            .expect("watermark lock")
            .heap
            .iter()
            .cloned()
            .collect(),
        None => Vec::new(),
    };
    // Heap iteration order is internal; sort so equal run states write
    // byte-identical checkpoints.
    watermark_ids.sort();

    let mut doc = Document::new();
    doc.push(section::META, crate::persist::encode_one(&ck.meta));
    doc.push(section::POLICY, crate::persist::encode_one(&ck.policy));
    doc.push(section::RECORDS, encode_seq(&ledger.records));
    doc.push(section::PENDING, encode_seq(&snapshots));
    doc.push(section::SLOTS, encode_seq(&loose));
    doc.push(section::WATERMARK, encode_seq(&watermark_ids));
    doc.write_atomic(&ck.path)?;
    Ok(ledger.paths)
}

/// Spreads a bag of prescriptions across the shards in sorted contiguous
/// chunks: [`PathId`] order is depth-first discovery order, so contiguous
/// chunks are (unions of) subtrees — the same locality the live run's
/// work-stealing maintains. Placement only shapes scheduling; the merge
/// stays canonical regardless.
fn distribute(frontier: &Frontier, mut bag: Vec<Prescription>) {
    if bag.is_empty() {
        return;
    }
    bag.sort_by(|a, b| a.id.cmp(&b.id));
    let shards = frontier.shards.len();
    let chunk = bag.len().div_ceil(shards).max(1);
    let mut shard = 0;
    while !bag.is_empty() {
        let rest = bag.split_off(chunk.min(bag.len()));
        frontier.push_batch(shard % shards, bag);
        bag = rest;
        shard += 1;
    }
}

/// The shared work-stealing frontier.
struct Frontier {
    shards: Vec<Mutex<Box<dyn PrescriptionStrategy>>>,
    /// Prescriptions sitting in shards.
    pending: AtomicUsize,
    /// Prescriptions taken but not yet fully processed (their spawns are
    /// not pushed yet), so an empty `pending` does not imply termination.
    in_flight: AtomicUsize,
    /// Cooperative stop (error or path limit reached).
    stop: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Frontier {
    fn new(shards: Vec<Box<dyn PrescriptionStrategy>>) -> Self {
        Frontier {
            shards: shards.into_iter().map(Mutex::new).collect(),
            pending: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    fn push_batch(&self, shard: usize, batch: Vec<Prescription>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        {
            let mut s = self.shards[shard].lock().expect("shard lock");
            for p in batch {
                s.push(p);
            }
        }
        self.pending.fetch_add(n, Ordering::SeqCst);
        if n == 1 {
            self.idle_cv.notify_one();
        } else {
            self.idle_cv.notify_all();
        }
    }

    /// Blocks until a prescription is available (own shard first, then
    /// stealing round-robin), or until exploration is over.
    ///
    /// When checkpointing is on, `slot` is this worker's in-flight slot: it
    /// is filled with a clone of the popped prescription **while the shard
    /// (or victim) lock is still held**, so a checkpoint that reads all
    /// shards and slots under all shard locks sees every prescription in
    /// exactly one place.
    fn acquire(
        &self,
        me: usize,
        slot: Option<&Mutex<Option<Prescription>>>,
    ) -> Option<Prescription> {
        let fill = |p: &Prescription| {
            if let Some(slot) = slot {
                *slot.lock().expect("slot lock") = Some(p.clone());
            }
        };
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            {
                let mut shard = self.shards[me].lock().expect("shard lock");
                if let Some(p) = shard.pop() {
                    fill(&p);
                    self.checkout();
                    return Some(p);
                }
            }
            for k in 1..self.shards.len() {
                let victim = (me + k) % self.shards.len();
                let mut shard = self.shards[victim].lock().expect("shard lock");
                if let Some(p) = shard.steal() {
                    fill(&p);
                    self.checkout();
                    return Some(p);
                }
                drop(shard);
            }
            if self.pending.load(Ordering::SeqCst) == 0
                && self.in_flight.load(Ordering::SeqCst) == 0
            {
                self.idle_cv.notify_all();
                return None;
            }
            // Somebody is still working and may spawn more; doze briefly.
            // The timeout bounds any lost-wakeup window.
            let guard = self.idle_lock.lock().expect("idle lock");
            let _ = self
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle wait");
        }
    }

    fn checkout(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    fn release(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.pending.load(Ordering::SeqCst) == 0
        {
            // Possibly the last unit of work: wake idlers so they can exit.
            self.idle_cv.notify_all();
        }
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.idle_cv.notify_all();
    }

    /// Re-seeds shard `i` from a resume snapshot (exact per-shard restore;
    /// only called before the workers spawn). The caller has already
    /// matched [`FrontierSnapshot::strategy`] against the shard's policy.
    fn restore_shard(&self, i: usize, snapshot: FrontierSnapshot) {
        let n = snapshot.items.len();
        self.shards[i].lock().expect("shard lock").restore(snapshot);
        self.pending.fetch_add(n, Ordering::SeqCst);
    }
}

/// The `limit` lowest materialized [`PathId`]s so far, as a bounded
/// max-heap. Once full, its maximum is a *watermark*: any prescription
/// whose id exceeds it can never enter the final truncated prefix (and,
/// parents ordering before descendants, neither can its whole subtree), so
/// workers prune such work without replaying it. The watermark only ever
/// tightens, which makes pruning canonical: everything below the final
/// watermark is guaranteed to be materialized on every schedule.
struct Watermark {
    limit: usize,
    heap: std::collections::BinaryHeap<PathId>,
}

impl Watermark {
    fn new(limit: u64) -> Self {
        Watermark {
            limit: usize::try_from(limit).unwrap_or(usize::MAX),
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// Records a materialized path id.
    fn insert(&mut self, id: PathId) {
        self.heap.push(id);
        if self.heap.len() > self.limit {
            self.heap.pop();
        }
    }

    /// True when `id` can no longer enter the `limit` lowest ids.
    fn prunes(&self, id: &PathId) -> bool {
        self.heap.len() >= self.limit && self.heap.peek().is_some_and(|max| id > max)
    }
}

/// Shared run state beyond the frontier.
struct RunState {
    frontier: Frontier,
    /// Canonical truncation state; `None` for unbounded runs.
    watermark: Option<Mutex<Watermark>>,
    /// First error in canonical order: workers keep the error whose
    /// prescription id sorts smallest, so the reported failure is
    /// schedule-independent.
    error: Mutex<Option<(PathId, Error)>>,
    /// Checkpointing state; `None` when no checkpoint path is configured
    /// (the zero-overhead default — workers then keep thread-local outputs
    /// and never touch a ledger).
    checkpoint: Option<CheckpointShared>,
}

impl RunState {
    /// Records a replay error, keeping the canonically-first one.
    ///
    /// Unbounded runs stop immediately — the run is lost either way. A
    /// *truncated* run keeps exploring: whether this error lies inside the
    /// canonical `limit`-prefix (and must surface) or beyond it (and must
    /// be dropped, exactly as the sequential engine would never have
    /// reached it) is only decidable once the watermark has converged, so
    /// stopping here would make the outcome schedule-dependent.
    fn record_error(&self, id: PathId, e: Error) {
        // A root-id error (worker startup, root-prescription replay) sorts
        // before any cut, so it surfaces on every schedule — stopping
        // early is safe and spares the surviving workers a doomed
        // exploration.
        let always_surfaces = self.watermark.is_none() || id == PathId::root();
        let mut slot = self.error.lock().expect("error lock");
        match &*slot {
            Some((winner, _)) if *winner <= id => {}
            _ => *slot = Some((id, e)),
        }
        if always_surfaces {
            self.frontier.request_stop();
        }
    }

    /// True when `id` is already past the truncation watermark.
    fn pruned(&self, id: &PathId) -> bool {
        self.watermark
            .as_ref()
            .is_some_and(|w| w.lock().expect("watermark lock").prunes(id))
    }

    /// Notes a materialized path for the truncation watermark and, in the
    /// same lock scope, sheds the spawns the tightened watermark already
    /// rules out.
    fn note_path(&self, id: &PathId, spawned: &mut Vec<Prescription>) {
        if let Some(w) = &self.watermark {
            let mut w = w.lock().expect("watermark lock");
            w.insert(id.clone());
            spawned.retain(|s| !w.prunes(&s.id));
        }
    }
}

/// A sharded, work-stealing exploration of one binary: N worker threads,
/// each owning a complete engine, cooperating through replayable
/// [`Prescription`]s. Built by [`crate::SessionBuilder::build_parallel`];
/// see the [module docs](self) for topology and determinism guarantees.
pub struct ParallelSession {
    workers: usize,
    executor_factory: ExecutorFactory,
    backend_factory: BackendFactory,
    observer_factory: Option<ObserverFactory>,
    shard_strategy: ShardStrategyFactory,
    fuel: u64,
    limit: Option<u64>,
    input_len: u32,
    /// Per-worker warm-start cache bound; `None` = cache off (the
    /// default). See [`crate::warm`] — affects wall time only, never
    /// results.
    warm_capacity: Option<usize>,
    /// The word-level static-analysis gate screening flip queries before
    /// any bit-blast (on by default). Affects wall time only, never
    /// merged records.
    gate: StaticGate,
    /// Metrics/trace/progress wiring ([`crate::SessionBuilder::metrics`],
    /// `::trace`, `::progress`). Like the warm cache and the gate,
    /// instrumentation affects wall time only, never merged records.
    instrumentation: InstrumentationConfig,
    /// Checkpoint/resume wiring ([`crate::SessionBuilder::checkpoint`],
    /// `::resume`). Affects wall time and on-disk artifacts only, never
    /// merged records.
    persist: PersistPlan,
    /// The address-concretization policy every worker executor resolves
    /// symbolic memory addresses under (learned from the factory's probe
    /// executor). Stamped into every prescription and persisted with
    /// checkpoints.
    policy: AddressPolicyKind,
    strategy_name: &'static str,
    backend_name: &'static str,
    done: bool,
    summary: Summary,
    records: Vec<PathRecord>,
}

impl std::fmt::Debug for ParallelSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSession")
            .field("workers", &self.workers)
            .field("strategy", &self.strategy_name)
            .field("backend", &self.backend_name)
            .field("paths", &self.summary.paths)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl ParallelSession {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workers: usize,
        executor_factory: ExecutorFactory,
        backend_factory: BackendFactory,
        observer_factory: Option<ObserverFactory>,
        shard_strategy: ShardStrategyFactory,
        fuel: u64,
        limit: Option<u64>,
        input_len: u32,
        warm_capacity: Option<usize>,
        gate: StaticGate,
        instrumentation: InstrumentationConfig,
        persist: PersistPlan,
        policy: AddressPolicyKind,
    ) -> Self {
        let strategy_name = shard_strategy(0).name();
        let backend_name = if warm_capacity.is_some() {
            "bitblast-warm"
        } else {
            backend_factory().name()
        };
        ParallelSession {
            workers,
            executor_factory,
            backend_factory,
            observer_factory,
            shard_strategy,
            fuel,
            limit,
            input_len,
            warm_capacity,
            gate,
            instrumentation,
            persist,
            policy,
            strategy_name,
            backend_name,
            done: false,
            summary: Summary::default(),
            records: Vec::new(),
        }
    }

    /// The result-shaping parameters a checkpoint of this session records.
    fn checkpoint_meta(&self) -> CheckpointMeta {
        CheckpointMeta {
            input_len: self.input_len,
            fuel: self.fuel,
            limit: self.limit,
            workers: self.workers as u64,
            strategy: self.strategy_name.to_string(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Length of the symbolic input region in bytes.
    pub fn input_len(&self) -> u32 {
        self.input_len
    }

    /// The address-concretization policy the worker executors run under.
    pub fn policy(&self) -> AddressPolicyKind {
        self.policy
    }

    /// Name of the shard-local path-selection policy.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy_name
    }

    /// Name of the per-query solver backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// True when the deterministic prefix-keyed warm start is enabled
    /// ([`crate::SessionBuilder::warm_start`]).
    pub fn warm_start(&self) -> bool {
        self.warm_capacity.is_some()
    }

    /// True once [`ParallelSession::run_all`] has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Totals of the completed exploration (empty before
    /// [`ParallelSession::run_all`]).
    pub fn summary(&self) -> Summary {
        self.summary.clone()
    }

    /// The deterministic merged event stream: one record per materialized
    /// path, sorted by [`PathId`] — i.e. in sequential depth-first
    /// discovery order, independent of worker count and scheduling. Empty
    /// before [`ParallelSession::run_all`].
    pub fn records(&self) -> &[PathRecord] {
        &self.records
    }

    /// Runs the sharded exploration to completion (or to the path limit)
    /// and returns the merged [`Summary`]. After a successful run,
    /// subsequent calls return the cached summary without re-exploring; a
    /// *failed* run is never cached — calling again re-explores and
    /// deterministically reproduces the error.
    ///
    /// # Errors
    /// Returns the canonically-first [`Error`] if any worker fails to
    /// replay a prescription (decode error, unknown syscall, fuel
    /// exhaustion).
    pub fn run_all(&mut self) -> Result<Summary, Error> {
        let root = Prescription::root(vec![0u8; self.input_len as usize], self.policy);
        self.run_seeded(vec![root])
    }

    /// Runs the exploration over an explicit bag of pending prescriptions
    /// instead of the root — the worker half of multi-process sharding: a
    /// parent process materializes the root once
    /// ([`ParallelSession::expand_root`]), partitions the spawned level-1
    /// prescriptions into contiguous [`PathId`]-sorted chunks, and each
    /// child process drains one chunk with `run_bag`. A [`PathId`]'s
    /// subtree occupies a contiguous interval of the canonical order, so
    /// the children's merged record streams concatenate — in chunk order —
    /// into exactly the single-process merged stream.
    ///
    /// Same contract as [`ParallelSession::run_all`] otherwise; resume
    /// (when configured) takes precedence over `bag`.
    ///
    /// # Errors
    /// As [`ParallelSession::run_all`].
    pub fn run_bag(&mut self, bag: Vec<Prescription>) -> Result<Summary, Error> {
        self.run_seeded(bag)
    }

    /// Materializes the root path on a fresh engine and returns its record
    /// plus the level-1 prescriptions it spawns — the parent-process half
    /// of a sharded run (see [`ParallelSession::run_bag`]). Runs
    /// uninstrumented on the calling thread; the session itself is left
    /// untouched.
    ///
    /// # Errors
    /// Returns the [`Error`] of the root replay (executor construction,
    /// fuel exhaustion, …).
    pub fn expand_root(&self) -> Result<(PathRecord, Vec<Prescription>), Error> {
        let mut executor = (self.executor_factory)()?;
        let mut tm = TermManager::new();
        let mut backend = (self.backend_factory)();
        let mut observer = NullObserver;
        let instr = Instruments::new(None, None, 0);
        let root = Prescription::root(vec![0u8; self.input_len as usize], self.policy);
        let (_, materialized) = replay(
            &mut *executor,
            &mut tm,
            &mut *backend,
            &mut observer,
            &root,
            self.fuel,
            self.gate,
            &instr,
        )?;
        let (record, spawned) = materialized.expect("root prescription has no flip to fail");
        Ok((record, spawned))
    }

    fn run_seeded(&mut self, seed: Vec<Prescription>) -> Result<Summary, Error> {
        if self.done {
            return Ok(self.summary());
        }
        let shards: Vec<Box<dyn PrescriptionStrategy>> = (0..self.workers)
            .map(|i| (self.shard_strategy)(i))
            .collect();
        let mut state = RunState {
            frontier: Frontier::new(shards),
            watermark: self.limit.map(|l| Mutex::new(Watermark::new(l))),
            error: Mutex::new(None),
            checkpoint: None,
        };

        // The coordinator's own observer (one extra factory draw, index
        // `workers`) reports resume seeding and the final drain checkpoint.
        // Only materialized when persistence is configured, so plain runs
        // see no extra factory call.
        let persist_active = self.persist.checkpoint.is_some() || self.persist.resume.is_some();
        let mut coord_observer: Box<dyn Observer> = if persist_active {
            match &self.observer_factory {
                Some(f) => f(self.workers),
                None => Box::new(NullObserver),
            }
        } else {
            Box::new(NullObserver)
        };

        // Resume: seed the run from the checkpoint instead of `seed`.
        let mut restored: Vec<PrescriptionRecord> = Vec::new();
        if let Some(resume_path) = self.persist.resume.clone() {
            let loaded = load_checkpoint(&resume_path, &self.checkpoint_meta(), self.policy)?;
            if let Some(w) = &state.watermark {
                let mut w = w.lock().expect("watermark lock");
                for id in loaded.watermark_ids {
                    w.insert(id);
                }
            }
            // Exact per-shard restore when the topology matches (same
            // worker count, same policy per shard) — including RNG state
            // and the coverage warm-up; otherwise redistribute the whole
            // pending bag in sorted contiguous chunks. Either way the
            // merge stays canonical; only scheduling differs.
            let exact = loaded.shards.len() == self.workers
                && loaded.shards.iter().enumerate().all(|(i, snap)| {
                    snap.strategy == state.frontier.shards[i].lock().expect("shard lock").name()
                });
            if exact {
                for (i, snap) in loaded.shards.into_iter().enumerate() {
                    state.frontier.restore_shard(i, snap);
                }
                distribute(&state.frontier, loaded.loose);
            } else {
                let mut bag: Vec<Prescription> =
                    loaded.shards.into_iter().flat_map(|s| s.items).collect();
                bag.extend(loaded.loose);
                distribute(&state.frontier, bag);
            }
            restored = loaded.records;
            coord_observer.on_checkpoint(CheckpointEvent::Resumed {
                records: restored.len() as u64,
            });
        } else {
            distribute(&state.frontier, seed);
        }

        if let Some((path, every)) = self.persist.checkpoint.clone() {
            // Restored records live in the ledger so periodic checkpoints
            // stay self-contained (a checkpoint of a resumed run carries
            // the full record set, not a delta).
            let paths = restored.iter().filter(|r| r.path.is_some()).count() as u64;
            state.checkpoint = Some(CheckpointShared {
                ledger: Mutex::new(CheckpointLedger {
                    records: std::mem::take(&mut restored),
                    failed: Vec::new(),
                    paths,
                    since_write: 0,
                }),
                slots: (0..self.workers).map(|_| Mutex::new(None)).collect(),
                path,
                every,
                meta: self.checkpoint_meta(),
                policy: self.policy,
            });
        }

        // One `Instruments` handle per worker, all sharing the registry and
        // sink but each stamping its own track (worker index); track
        // `self.workers` is reserved for the coordinator's merge phase.
        let base_instr = Instruments::new(
            self.instrumentation.metrics.clone(),
            self.instrumentation.trace.clone(),
            0,
        );
        let mut outputs: Vec<Vec<PrescriptionRecord>> = Vec::with_capacity(self.workers);
        let progress_stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers);
            for idx in 0..self.workers {
                let state = &state;
                let executor_factory = Arc::clone(&self.executor_factory);
                let backend_factory = Arc::clone(&self.backend_factory);
                let observer_factory = self.observer_factory.clone();
                let fuel = self.fuel;
                let warm_capacity = self.warm_capacity;
                let gate = self.gate;
                let instr = base_instr.for_track(idx as u32);
                handles.push(scope.spawn(move || {
                    worker_main(
                        idx,
                        state,
                        &*executor_factory,
                        &*backend_factory,
                        observer_factory.as_deref(),
                        fuel,
                        warm_capacity,
                        gate,
                        instr,
                    )
                }));
            }
            // The periodic stderr reporter runs off the workers' hot paths
            // entirely: it reads the shared registry (relaxed loads) and the
            // frontier's pending gauge on its own thread, so enabling it
            // cannot perturb results.
            let reporter = self.instrumentation.progress.map(|interval| {
                let registry = self.instrumentation.metrics.clone();
                let coverage = self.instrumentation.progress_coverage.clone();
                let state = &state;
                let stop = &progress_stop;
                scope.spawn(move || {
                    let mut progress = Progress::new(interval, coverage);
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(20));
                        progress.tick(
                            registry.as_ref(),
                            Some(state.frontier.pending.load(Ordering::Relaxed)),
                        );
                    }
                })
            });
            for h in handles {
                outputs.push(h.join().expect("worker panicked"));
            }
            progress_stop.store(true, Ordering::Relaxed);
            if let Some(h) = reporter {
                h.join().expect("progress reporter panicked");
            }
        });

        let mut error = state.error.lock().expect("error lock").take();
        if self.limit.is_none() {
            if let Some((_, e)) = error.take() {
                // A failed run is not cached (`done` stays false): retrying
                // re-explores and, replay being deterministic, reproduces
                // the same error instead of masking it behind an empty
                // summary. The last periodic checkpoint stays on disk: the
                // failed prescription is persisted as loose pending work,
                // so a resume deterministically re-derives this error.
                return Err(e);
            }
        }

        // Drain checkpoint: one final write after the workers settle, so a
        // finished (or truncated) run leaves a checkpoint a resume turns
        // into the identical merged output without re-exploring.
        if let Some(ck) = &state.checkpoint {
            let ledger = ck.ledger.lock().expect("ledger lock");
            let wrote = write_checkpoint(ck, &ledger, &state);
            drop(ledger);
            match wrote {
                Ok(paths) => coord_observer.on_checkpoint(CheckpointEvent::Written { paths }),
                Err(e) => return Err(Error::Persist(e)),
            }
        }

        // Deterministic merge: canonical (sequential depth-first) order.
        // Timed on the coordinator track (`self.workers`) so the trace
        // shows the sequential tail after the worker tracks go quiet.
        let merge_instr = base_instr.for_track(self.workers as u32);
        let merge_started = merge_instr.begin(Phase::Merge);
        let mut all: Vec<PrescriptionRecord> = outputs.into_iter().flatten().collect();
        if let Some(ck) = state.checkpoint.take() {
            all.extend(ck.ledger.into_inner().expect("ledger lock").records);
        }
        all.extend(restored);
        all.sort_by(|a, b| a.id.cmp(&b.id));
        // Defense in depth for resumed runs: replay purity makes equal-id
        // records byte-identical, so dropping duplicates is canonical.
        // (The commit-lock consistent cut means none are expected.)
        all.dedup_by(|a, b| a.id == b.id);

        // Canonical truncation: workers over-collected under the shrinking
        // watermark; keep exactly the `limit` lowest-id paths — the prefix
        // an unbounded run's merged stream starts with — and the query
        // records up to and including the last kept path. Records past the
        // cut (racers and their queries) are schedule-dependent and must
        // not surface.
        let mut truncated = false;
        if let Some(limit) = self.limit {
            let mut paths = 0u64;
            let mut cut = all.len();
            let mut cut_id = None;
            for (i, rec) in all.iter().enumerate() {
                if rec.path.is_some() {
                    paths += 1;
                    if paths == limit {
                        cut = i + 1;
                        cut_id = Some(&rec.id);
                        break;
                    }
                }
            }
            // A replay error surfaces iff the sequential engine would have
            // hit it before its `limit`-th path: its id sorts before the
            // cut (or the limit was never reached). Every prescription
            // below the final watermark is processed on every schedule, so
            // this decision — and the canonically-first error it returns —
            // is schedule-independent. Errors beyond the cut belong to
            // work the truncated exploration never owed anyone.
            if let Some((eid, e)) = error.take() {
                let surfaces = match cut_id {
                    None => true,
                    Some(cid) => eid < *cid,
                };
                if surfaces {
                    // Close the merge span before bailing so traced runs
                    // keep every `B` event balanced even on error.
                    merge_instr.finish(merge_started, Phase::Merge, &mut NullObserver);
                    return Err(e);
                }
            }
            truncated = paths >= limit;
            all.truncate(cut);
        }
        self.done = true;

        let mut summary = Summary {
            truncated,
            ..Summary::default()
        };
        let mut records = Vec::new();
        for rec in all {
            if rec.query.is_some() {
                summary.solver_checks += 1;
            }
            if let Some(path) = rec.path {
                summary.paths += 1;
                summary.total_steps += path.steps;
                summary.max_trail_len = summary.max_trail_len.max(path.trail_len);
                match path.exit {
                    StepResult::Exited(0) | StepResult::Continue => {}
                    StepResult::Exited(code) => summary.error_paths.push(ErrorPath {
                        exit_code: Some(code),
                        input: path.input.clone(),
                    }),
                    StepResult::Break => summary.error_paths.push(ErrorPath {
                        exit_code: None,
                        input: path.input.clone(),
                    }),
                }
                records.push(path);
            }
        }
        self.summary = summary;
        self.records = records;
        merge_instr.finish(merge_started, Phase::Merge, &mut NullObserver);
        Ok(self.summary())
    }
}

/// One worker: pull prescriptions, replay each on the worker's own engine
/// in a fresh solver context (or through the worker's warm-start cache),
/// record results, spawn follow-up work.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    idx: usize,
    state: &RunState,
    executor_factory: &(dyn Fn() -> Result<Box<dyn PathExecutor>, Error> + Send + Sync),
    backend_factory: &(dyn Fn() -> Box<dyn SolverBackend> + Send + Sync),
    observer_factory: Option<&(dyn Fn(usize) -> Box<dyn Observer> + Send + Sync)>,
    fuel: u64,
    warm_capacity: Option<usize>,
    gate: StaticGate,
    instr: Instruments,
) -> Vec<PrescriptionRecord> {
    let mut executor = match executor_factory() {
        Ok(e) => e,
        Err(e) => {
            state.record_error(PathId::root(), e);
            return Vec::new();
        }
    };
    let mut observer: Box<dyn Observer> = match observer_factory {
        Some(f) => f(idx),
        None => Box::new(NullObserver),
    };
    let mut tm = TermManager::new();
    let mut warm = warm_capacity.map(WarmCache::new);
    let mut out = Vec::new();
    // This worker's in-flight slot (checkpointing runs only): `acquire`
    // fills it under the shard lock; the commit below clears it under the
    // ledger lock.
    let slot = state.checkpoint.as_ref().map(|ck| &ck.slots[idx]);

    while let Some(p) = state.frontier.acquire(idx, slot) {
        // Balance the frontier's in-flight count on every exit from this
        // iteration — including an unwind out of user code (executor,
        // backend, or observer panics). Without this, a panicking worker
        // would leave `in_flight` elevated and the surviving workers would
        // doze forever in `acquire` while the main thread blocks joining.
        let _checked_in = InFlightGuard(&state.frontier);
        // Canonical truncation: ids past the watermark can never enter the
        // final `limit`-lowest prefix, and neither can their descendants —
        // skip the replay entirely, recording nothing. The slot clear needs
        // no commit lock: a checkpoint that still captured `p` only makes a
        // resume re-prune it (the persisted watermark is at least as tight
        // as the one that pruned it here).
        if state.pruned(&p.id) {
            if let Some(slot) = slot {
                *slot.lock().expect("slot lock") = None;
            }
            continue;
        }
        // A fresh engine context per prescription: reset handle numbering
        // and solve in a brand-new backend — or, with warm start on, in a
        // cached prefix context whose answers are bit-identical to the
        // fresh one (see `crate::warm`). Either way the replay is a pure
        // function of the prescription (schedule-independent results).
        let outcome = match &mut warm {
            Some(cache) => replay_warm(
                &mut *executor,
                &mut tm,
                cache,
                &mut *observer,
                &p,
                fuel,
                gate,
                &instr,
            ),
            None => {
                tm.reset();
                let mut backend = backend_factory();
                replay(
                    &mut *executor,
                    &mut tm,
                    &mut *backend,
                    &mut *observer,
                    &p,
                    fuel,
                    gate,
                    &instr,
                )
            }
        };
        match outcome {
            Err(e) => {
                let stopping = state.watermark.is_none();
                if let Some(ck) = &state.checkpoint {
                    // Persist the failure as loose pending work: replay is
                    // pure, so a resumed run re-replays the prescription
                    // and deterministically re-derives this very error —
                    // no error serialization needed.
                    let mut ledger = ck.ledger.lock().expect("ledger lock");
                    ledger.failed.push(p.clone());
                    *ck.slots[idx].lock().expect("slot lock") = None;
                    drop(ledger);
                }
                state.record_error(p.id, e);
                if stopping {
                    break;
                }
                // Truncated run: the erroring prescription contributes no
                // record and spawns nothing; whether the error surfaces is
                // decided canonically at merge time.
                continue;
            }
            Ok((query, materialized)) => {
                let mut record = PrescriptionRecord {
                    id: p.id,
                    query,
                    path: None,
                };
                match &state.checkpoint {
                    None => {
                        if let Some((path, mut spawned)) = materialized {
                            // Note the path and shed spawns the tightened
                            // watermark already rules out, then push the
                            // rest before the guard releases in-flight, so
                            // the termination check never sees a window
                            // with neither pending nor in-flight work.
                            state.note_path(&record.id, &mut spawned);
                            record.path = Some(path);
                            state.frontier.push_batch(idx, spawned);
                        }
                        out.push(record);
                    }
                    Some(ck) => {
                        // Atomic commit under the ledger lock — record,
                        // spawned children, and slot clear land together,
                        // so a checkpoint (which runs inside a commit)
                        // never captures a half-committed prescription.
                        let mut wrote = None;
                        let mut write_err = None;
                        {
                            let mut ledger = ck.ledger.lock().expect("ledger lock");
                            if let Some((path, mut spawned)) = materialized {
                                state.note_path(&record.id, &mut spawned);
                                record.path = Some(path);
                                state.frontier.push_batch(idx, spawned);
                                ledger.paths += 1;
                                ledger.since_write += 1;
                            }
                            ledger.records.push(record);
                            *ck.slots[idx].lock().expect("slot lock") = None;
                            if ledger.since_write >= ck.every {
                                ledger.since_write = 0;
                                match write_checkpoint(ck, &ledger, state) {
                                    Ok(paths) => wrote = Some(paths),
                                    Err(e) => write_err = Some(e),
                                }
                            }
                        }
                        if let Some(paths) = wrote {
                            // Fired outside the lock: a sibling may replace
                            // the file mid-event, which is fine — every
                            // written checkpoint is a consistent cut.
                            observer.on_checkpoint(CheckpointEvent::Written { paths });
                        }
                        if let Some(e) = write_err {
                            // A failed checkpoint write is fatal on every
                            // schedule: it sorts as a root-id error, which
                            // always surfaces and stops the run.
                            state.record_error(PathId::root(), Error::Persist(e));
                            break;
                        }
                    }
                }
            }
        }
    }
    out
}

/// Releases one unit of in-flight work when dropped; on an unwind it also
/// stops the run so the sibling workers exit instead of exploring on while
/// the main thread re-raises the panic from `join`.
struct InFlightGuard<'a>(&'a Frontier);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.request_stop();
        }
        self.0.release();
    }
}

/// Replays one prescription on the given engine: solve the flip (if any),
/// materialize the path, and derive the prescriptions of its unexplored
/// suffix. Pure in the prescription given a fresh `tm`/`backend` context.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn replay(
    executor: &mut dyn PathExecutor,
    tm: &mut TermManager,
    backend: &mut dyn SolverBackend,
    observer: &mut dyn Observer,
    p: &Prescription,
    fuel: u64,
    gate: StaticGate,
    instr: &Instruments,
) -> Result<(Option<SatResult>, Option<(PathRecord, Vec<Prescription>)>), Error> {
    check_policy(p, executor)?;
    let (query, input) = match p.flip {
        None => (None, p.input.clone()),
        Some(flip) => {
            let replay_started = instr.begin(Phase::Replay);
            let trail = executor.execute_prefix(tm, &p.input, fuel, flip.ord + 1);
            instr.finish(replay_started, Phase::Replay, observer);
            let trail = trail?;
            let (i, cond) = flip.locate(&trail)?;
            // Terms are interned in the same order whether or not the gate
            // screens the query, so gated and ungated replays build
            // identical term handles (and hence identical CNF and models).
            let prefix: Vec<_> = trail[..i].iter().map(|e| e.path_term(tm)).collect();
            let flipped = if flip.taken { tm.not(cond) } else { cond };
            let gate_started = instr.begin(Phase::Gate);
            let screened = gate.screen(tm, &prefix, flipped, &p.input);
            instr.finish(gate_started, Phase::Gate, observer);
            if let Some(report) = screened {
                observer.on_static_analysis(&report.stats);
                match report.verdict {
                    // Eliminated: no solver check, no `on_query`, and a
                    // `query: None` record so the merge counts nothing.
                    Some((SatResult::Unsat, _)) => return Ok((None, None)),
                    Some((SatResult::Sat, bytes)) => {
                        let bytes = bytes.expect("sat verdict carries witness bytes");
                        return materialize(executor, tm, observer, p, fuel, None, bytes, instr);
                    }
                    None => {}
                }
            }
            let blast_started = instr.begin(Phase::BitBlast);
            backend.push();
            for &t in &prefix {
                backend.assert_term(tm, t);
            }
            backend.assert_term(tm, flipped);
            instr.finish(blast_started, Phase::BitBlast, observer);
            let solve_started = instr.begin(Phase::Solve);
            let r = backend.check_sat(tm);
            let solve_nanos = instr.finish(solve_started, Phase::Solve, observer);
            if solve_started.is_some() {
                instr.record_query(solve_nanos);
            }
            observer.on_query(r);
            if r != SatResult::Sat {
                backend.pop();
                return Ok((Some(r), None));
            }
            let model = backend.model(tm).expect("sat has model");
            let bytes = crate::prescribe::witness_bytes(&model, executor.input_len());
            backend.pop();
            (Some(r), bytes)
        }
    };

    materialize(executor, tm, observer, p, fuel, query, input, instr)
}

/// The warm-start counterpart of [`replay`]: the flip query goes through
/// the worker's [`WarmCache`] (parent-input-keyed trail + blasted-prefix
/// contexts) instead of a fresh backend. The cache guarantees answers
/// bit-identical to [`replay`]'s (see [`crate::warm`]), so the two paths
/// are interchangeable result-wise; only wall time and the
/// [`Observer::on_warm_query`] accounting differ.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn replay_warm(
    executor: &mut dyn PathExecutor,
    tm: &mut TermManager,
    cache: &mut WarmCache,
    observer: &mut dyn Observer,
    p: &Prescription,
    fuel: u64,
    gate: StaticGate,
    instr: &Instruments,
) -> Result<(Option<SatResult>, Option<(PathRecord, Vec<Prescription>)>), Error> {
    check_policy(p, executor)?;
    let (query, input) = match p.flip {
        None => (None, p.input.clone()),
        Some(flip) => {
            let (r, bytes, warm_stats, sa_stats) =
                cache.solve_flip(executor, &p.input, flip, fuel, gate, instr, observer)?;
            if let Some(sa) = &sa_stats {
                observer.on_static_analysis(sa);
            }
            // An eliminated query carries no warm stats: it fires neither
            // `on_query` nor `on_warm_query` and records `query: None`, so
            // the merge's solver-check count matches an analysis-off run
            // minus exactly the eliminated queries.
            if let Some(warm) = &warm_stats {
                observer.on_query(r);
                observer.on_warm_query(warm);
            }
            let query = warm_stats.is_some().then_some(r);
            match bytes {
                None => return Ok((query, None)),
                Some(bytes) => (query, bytes),
            }
        }
    };

    // Materialization runs on the worker's own term manager, reset per
    // path as in the cold path (the cached contexts keep their handles
    // private to the cache).
    tm.reset();
    materialize(executor, tm, observer, p, fuel, query, input, instr)
}

/// The policy divergence guard of prescription replay: a prescription
/// records the address policy its trail was produced under, and replaying
/// it under any other policy would silently renumber branch ordinals (the
/// trail shape depends on how symbolic addresses resolve). Cold and warm
/// replay share this single check.
fn check_policy(p: &Prescription, executor: &dyn PathExecutor) -> Result<(), Error> {
    if p.policy != executor.policy() {
        return Err(Error::ReplayDivergence {
            what: "prescription's address policy differs from the replaying executor's",
        });
    }
    Ok(())
}

/// Executes the materialized path under `input` and derives the
/// prescriptions of its unexplored suffix — the shared tail of [`replay`]
/// and [`replay_warm`].
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn materialize(
    executor: &mut dyn PathExecutor,
    tm: &mut TermManager,
    observer: &mut dyn Observer,
    p: &Prescription,
    fuel: u64,
    query: Option<SatResult>,
    input: Vec<u8>,
    instr: &Instruments,
) -> Result<(Option<SatResult>, Option<(PathRecord, Vec<Prescription>)>), Error> {
    let execute_started = instr.begin(Phase::Execute);
    let outcome = executor.execute_path(tm, &input, fuel, observer);
    instr.finish(execute_started, Phase::Execute, observer);
    let outcome = outcome?;
    instr.note_path();
    observer.on_path(&input, &outcome);

    let forced = p.flip.map_or(0, |f| f.ord + 1);
    let mut spawned = Vec::new();
    let mut decisions = Vec::new();
    for entry in &outcome.trail {
        if let TrailEntry::Branch { taken, pc, .. } = *entry {
            let ord = decisions.len();
            if ord >= forced {
                spawned.push(Prescription {
                    id: p.id.child(ord),
                    input: input.clone(),
                    flip: Some(Flip { ord, taken, pc }),
                    policy: p.policy,
                });
            }
            decisions.push(taken);
        }
    }
    let record = PathRecord {
        id: p.id.clone(),
        input,
        exit: outcome.exit,
        steps: outcome.steps,
        trail_len: outcome.trail.len(),
        decisions,
    };
    Ok((query, Some((record, spawned))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::CountingObserver;
    use crate::session::Session;
    use crate::strategy::{Bfs, RandomRestart};
    use binsym_asm::Assembler;
    use binsym_isa::Spec;

    const THREE_COMPARES: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    lbu a1, 0(a0)
    bltu a1, a2, c1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
c3:
    li a0, 0
    li a7, 93
    ecall
"#;

    const WITH_BUG: &str = r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a2, 7
    bne a1, a2, ok
    ebreak
ok:
    li a0, 0
    li a7, 93
    ecall
"#;

    fn elf(src: &str) -> binsym_elf::ElfFile {
        Assembler::new().assemble(src).expect("assembles")
    }

    fn parallel(src: &str, workers: usize) -> ParallelSession {
        Session::builder(Spec::rv32im())
            .binary(&elf(src))
            .workers(workers)
            .build_parallel()
            .expect("builds")
    }

    #[test]
    fn matches_sequential_summary_and_path_set() {
        let mut seq = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .build()
            .unwrap();
        // The model-independent fingerprint of each path is its
        // branch-decision vector; the complete path *set* is a semantic
        // property and must agree exactly. The discovery *order* within
        // each engine is DFS over its own solver's models (witness inputs
        // are model choices — the sequential incremental solver and the
        // fresh replay contexts may pick different, equally valid models,
        // reordering sibling subtrees).
        let mut seq_decisions: Vec<Vec<bool>> = seq
            .paths()
            .map(|r| {
                r.unwrap()
                    .trail
                    .iter()
                    .filter_map(|e| match *e {
                        TrailEntry::Branch { taken, .. } => Some(taken),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        seq_decisions.sort();
        let seq_summary = seq.summary();

        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        for workers in [1, 2, 4] {
            let mut par = parallel(THREE_COMPARES, workers);
            let summary = par.run_all().unwrap();
            assert_eq!(summary.paths, seq_summary.paths, "{workers} workers");
            assert_eq!(summary.total_steps, seq_summary.total_steps);
            assert_eq!(summary.solver_checks, seq_summary.solver_checks);
            assert_eq!(summary.max_trail_len, seq_summary.max_trail_len);
            let mut par_decisions: Vec<Vec<bool>> =
                par.records().iter().map(|r| r.decisions.clone()).collect();
            par_decisions.sort();
            assert_eq!(
                par_decisions, seq_decisions,
                "{workers} workers: path set equals sequential"
            );
            // Across worker counts the merge is byte-identical, witness
            // inputs included.
            assert_eq!(par.records(), reference.records(), "{workers} workers");
            assert_eq!(summary.error_paths, reference.summary().error_paths);
        }
    }

    #[test]
    fn canonical_sort_reproduces_single_worker_dfs_discovery_order() {
        // With one worker and the default depth-first shard policy, the
        // live processing order IS sequential DFS discovery. The merged
        // output is sorted by PathId — so if PathId::Ord is correct, the
        // sort must be a no-op relative to what the worker's observer saw.
        #[derive(Debug, Default)]
        struct DecisionLog(Arc<Mutex<Vec<Vec<bool>>>>);
        impl Observer for DecisionLog {
            fn on_path(&mut self, _input: &[u8], outcome: &crate::session::PathOutcome) {
                let decisions = outcome
                    .trail
                    .iter()
                    .filter_map(|e| match *e {
                        TrailEntry::Branch { taken, .. } => Some(taken),
                        _ => None,
                    })
                    .collect();
                self.0.lock().unwrap().push(decisions);
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let handle = Arc::clone(&log);
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .observer_factory(move |_| Box::new(DecisionLog(Arc::clone(&handle))))
            .build_parallel()
            .unwrap();
        par.run_all().unwrap();
        let discovery: Vec<Vec<bool>> = log.lock().unwrap().clone();
        let merged: Vec<Vec<bool>> = par.records().iter().map(|r| r.decisions.clone()).collect();
        assert_eq!(merged, discovery, "PathId sort == DFS discovery order");
    }

    #[test]
    fn error_paths_surface_with_witness_inputs() {
        let mut par = parallel(WITH_BUG, 3);
        let s = par.run_all().unwrap();
        assert_eq!(s.paths, 2);
        assert_eq!(s.error_paths.len(), 1);
        assert_eq!(s.error_paths[0].exit_code, None);
        assert_eq!(s.error_paths[0].input, vec![7]);
        assert!(par.is_done());
        // Cached: a second run_all returns the same summary.
        let again = par.run_all().unwrap();
        assert_eq!(again.paths, 2);
    }

    #[test]
    fn shard_policies_do_not_change_merged_results() {
        let reference = parallel(THREE_COMPARES, 2).run_all().unwrap();
        let policies: [ShardStrategyFactory; 2] = [
            Arc::new(|_| Box::new(Bfs::<Prescription>::new())),
            Arc::new(|i| Box::new(RandomRestart::<Prescription>::with_seed(42 + i as u64))),
        ];
        for policy in policies {
            let mut par = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(2)
                .shard_strategy(move |i| policy(i))
                .build_parallel()
                .unwrap();
            let s = par.run_all().unwrap();
            assert_eq!(s.paths, reference.paths);
            assert_eq!(s.error_paths, reference.error_paths);
            assert_eq!(s.total_steps, reference.total_steps);
            assert_eq!(s.solver_checks, reference.solver_checks);
        }
    }

    #[test]
    fn limit_truncates_with_exact_count() {
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(4)
            .limit(5)
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        assert_eq!(s.paths, 5);
        assert!(s.truncated);
    }

    #[test]
    fn worker_observers_fire_per_shard() {
        use std::sync::atomic::AtomicU64;
        #[derive(Debug)]
        struct AtomicCounter(Arc<AtomicU64>);
        impl Observer for AtomicCounter {
            fn on_path(&mut self, _input: &[u8], _outcome: &crate::session::PathOutcome) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let paths_seen = Arc::new(AtomicU64::new(0));
        let handle = Arc::clone(&paths_seen);
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .observer_factory(move |_| Box::new(AtomicCounter(Arc::clone(&handle))))
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        assert_eq!(paths_seen.load(Ordering::SeqCst), s.paths);
    }

    #[test]
    fn counting_observer_is_a_valid_worker_observer() {
        // Worker observers do not need shared handles to be useful in
        // benchmarks (cost models); a plain counter per worker works.
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .observer_factory(|_| Box::new(CountingObserver::new()))
            .build_parallel()
            .unwrap();
        assert_eq!(par.run_all().unwrap().paths, 8);
    }

    #[test]
    fn fuel_exhaustion_is_reported_as_error() {
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .fuel(3)
            .build_parallel()
            .unwrap();
        assert!(matches!(par.run_all(), Err(Error::OutOfFuel { .. })));
        // A failed run is not cached as an empty success: retrying
        // re-explores and reproduces the same error.
        assert!(!par.is_done());
        assert!(matches!(par.run_all(), Err(Error::OutOfFuel { .. })));
        assert!(par.records().is_empty());
    }

    #[test]
    fn truncated_runs_surface_errors_canonically() {
        // An unknown syscall reachable only on the all-flipped path, whose
        // id ([0,1,2]) sorts *last* in canonical order: a truncated run
        // whose prefix ends before it must succeed (the sequential engine
        // would have stopped before ever replaying it), while a budget
        // that forces exploration past every materializable path must
        // surface it — identically on every worker count.
        const LATE_ERROR: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    li a3, 0
    lbu a1, 0(a0)
    bltu a1, a2, c1
    addi a3, a3, 1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
    addi a3, a3, 1
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
    addi a3, a3, 1
c3: li a4, 3
    bne a3, a4, ok
    li a7, 999
    ecall
ok:
    li a0, 0
    li a7, 93
    ecall
"#;
        let image = elf(LATE_ERROR);
        let run = |workers: usize, limit: Option<u64>| {
            let mut builder = Session::builder(Spec::rv32im())
                .binary(&image)
                .workers(workers);
            if let Some(limit) = limit {
                builder = builder.limit(limit);
            }
            builder.build_parallel().unwrap().run_all()
        };
        // Unbounded: the error always surfaces.
        assert!(matches!(
            run(2, None),
            Err(Error::Exec(
                crate::machine::ExecError::UnknownSyscall { .. }
            ))
        ));
        for workers in [1usize, 2, 4] {
            // 7 paths materialize before the erroring prescription in
            // canonical order; a 4-path budget never owes it.
            let s = run(workers, Some(4)).expect("error lies beyond the cut");
            assert_eq!(s.paths, 4, "{workers} workers");
            assert!(s.truncated);
            // A budget the exploration cannot fill forces the error.
            assert!(
                matches!(run(workers, Some(8)), Err(Error::Exec(_))),
                "{workers} workers: unreachable budget surfaces the error"
            );
        }
    }

    #[test]
    fn panicking_worker_observer_propagates_instead_of_deadlocking() {
        #[derive(Debug)]
        struct Bomb;
        impl Observer for Bomb {
            fn on_path(&mut self, _input: &[u8], _outcome: &crate::session::PathOutcome) {
                panic!("observer bomb");
            }
        }
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .observer_factory(|_| Box::new(Bomb))
            .build_parallel()
            .unwrap();
        // The panic must surface through run_all (via the worker join), not
        // hang the surviving workers on a never-released in-flight count.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| par.run_all()));
        assert!(result.is_err(), "worker panic propagates");
    }

    #[test]
    fn warm_start_records_are_byte_identical_to_cache_off() {
        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        for workers in [1usize, 2, 4] {
            let mut warm = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(workers)
                .warm_start(true)
                .build_parallel()
                .unwrap();
            assert!(warm.warm_start());
            assert_eq!(warm.backend_name(), "bitblast-warm");
            let summary = warm.run_all().unwrap();
            assert_eq!(summary.paths, 8, "{workers} workers");
            assert_eq!(
                warm.records(),
                reference.records(),
                "{workers} workers: warm records byte-identical to cache-off"
            );
            assert_eq!(summary.solver_checks, reference.summary().solver_checks);
            assert_eq!(summary.error_paths, reference.summary().error_paths);
        }
    }

    #[test]
    fn warm_start_with_tiny_capacity_stays_identical() {
        let reference = {
            let mut par = parallel(THREE_COMPARES, 2);
            par.run_all().unwrap();
            par
        };
        // Capacity 1 forces constant eviction — results must not care.
        let mut warm = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .warm_start(true)
            .warm_capacity(1)
            .build_parallel()
            .unwrap();
        warm.run_all().unwrap();
        assert_eq!(warm.records(), reference.records());
    }

    #[test]
    fn warm_start_reports_cache_stats_through_observers() {
        use std::sync::atomic::AtomicU64;
        #[derive(Debug)]
        struct WarmTally {
            queries: Arc<AtomicU64>,
            warm: Arc<AtomicU64>,
            hits: Arc<AtomicU64>,
        }
        impl Observer for WarmTally {
            fn on_query(&mut self, _r: SatResult) {
                self.queries.fetch_add(1, Ordering::SeqCst);
            }
            fn on_warm_query(&mut self, stats: &crate::observe::WarmQueryStats) {
                self.warm.fetch_add(1, Ordering::SeqCst);
                if stats.cache_hit {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let queries = Arc::new(AtomicU64::new(0));
        let warm = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let (q, w, h) = (Arc::clone(&queries), Arc::clone(&warm), Arc::clone(&hits));
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .warm_start(true)
            .observer_factory(move |_| {
                Box::new(WarmTally {
                    queries: Arc::clone(&q),
                    warm: Arc::clone(&w),
                    hits: Arc::clone(&h),
                })
            })
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        assert_eq!(
            queries.load(Ordering::SeqCst),
            s.solver_checks,
            "every query observed"
        );
        assert_eq!(
            warm.load(Ordering::SeqCst),
            s.solver_checks,
            "every query carries warm stats"
        );
        assert!(
            hits.load(Ordering::SeqCst) > 0,
            "sibling flips hit the cache"
        );
    }

    #[test]
    fn warm_start_builder_validation() {
        let elf = elf(THREE_COMPARES);
        // Sequential build refuses warm start.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .warm_start(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Warm start and a custom backend factory are incompatible.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .warm_start(true)
            .backend_factory(|| Box::new(crate::backend::BitblastBackend::new()))
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Zero capacity is rejected.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .warm_start(true)
            .warm_capacity(0)
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // warm_start(false) with a backend factory stays fine.
        Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .backend_factory(|| Box::new(crate::backend::BitblastBackend::new()))
            .build_parallel()
            .unwrap();
    }

    #[test]
    fn warm_start_surfaces_error_paths_identically() {
        let mut cold = parallel(WITH_BUG, 2);
        let cold_summary = cold.run_all().unwrap();
        let mut warm = Session::builder(Spec::rv32im())
            .binary(&elf(WITH_BUG))
            .workers(2)
            .warm_start(true)
            .build_parallel()
            .unwrap();
        let warm_summary = warm.run_all().unwrap();
        assert_eq!(warm_summary.error_paths, cold_summary.error_paths);
        assert_eq!(warm.records(), cold.records());
    }

    #[test]
    fn builder_validation() {
        let elf = elf(THREE_COMPARES);
        // workers + build() is refused.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Zero workers.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(0)
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Sequential-only instances are rejected in parallel mode.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .observer(CountingObserver::new())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .backend(crate::backend::BitblastBackend::new())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .strategy(crate::strategy::Dfs::new())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // No binary at all.
        let err = Session::builder(Spec::rv32im())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::MissingBinary));
    }

    #[test]
    fn factory_builder_serves_both_modes() {
        let image = elf(THREE_COMPARES);
        let make = move || -> ExecutorFactory {
            let image = image.clone();
            Arc::new(move || {
                Ok(Box::new(crate::session::SpecExecutor::new(
                    Spec::rv32im(),
                    &image,
                    None,
                )?) as Box<dyn PathExecutor>)
            })
        };
        let f = make();
        let seq = Session::factory_builder(move || f())
            .build()
            .unwrap()
            .run_all()
            .unwrap();
        let f = make();
        let par = Session::factory_builder(move || f())
            .workers(2)
            .build_parallel()
            .unwrap()
            .run_all()
            .unwrap();
        assert_eq!(seq.paths, 8);
        assert_eq!(par.paths, 8);
        assert_eq!(seq.error_paths, par.error_paths);
    }

    /// A collision-free scratch path for checkpoint files.
    fn ck_path(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicU64;
        static UNIQUE: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "binsym-parallel-{tag}-{}-{}.ck",
            std::process::id(),
            UNIQUE.fetch_add(1, Ordering::SeqCst)
        ))
    }

    /// Simulates a kill: copies the live checkpoint file aside when the
    /// `fire_at`-th `Written` event fires. The copy opens the file at one
    /// instant — atomic tmp+rename replacement means whatever inode it
    /// reads is a complete, consistent checkpoint, so resuming from the
    /// copy is exactly resuming a process killed at that moment.
    #[derive(Debug)]
    struct CopyOnWritten {
        src: PathBuf,
        dst: PathBuf,
        fire_at: u64,
        seen: Arc<std::sync::atomic::AtomicU64>,
    }
    impl Observer for CopyOnWritten {
        fn on_checkpoint(&mut self, event: CheckpointEvent) {
            if let CheckpointEvent::Written { .. } = event {
                if self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.fire_at {
                    std::fs::copy(&self.src, &self.dst).expect("copy checkpoint aside");
                }
            }
        }
    }

    #[test]
    fn resume_from_drain_checkpoint_reproduces_the_finished_run() {
        let path = ck_path("drain");
        let mut first = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .checkpoint(&path, 4)
            .build_parallel()
            .unwrap();
        let first_summary = first.run_all().unwrap();
        assert!(path.exists(), "drain checkpoint written");
        // The drain checkpoint has an empty frontier: resuming replays
        // nothing and merges the restored records straight through.
        let mut resumed = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .resume(&path)
            .build_parallel()
            .unwrap();
        let resumed_summary = resumed.run_all().unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(resumed_summary, first_summary);
        assert_eq!(resumed.records(), first.records());
    }

    #[test]
    fn resume_after_mid_run_kill_is_byte_identical() {
        use std::sync::atomic::AtomicU64;
        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        for workers in [1usize, 2, 4] {
            let live = ck_path("kill-live");
            let copy = ck_path("kill-copy");
            let seen = Arc::new(AtomicU64::new(0));
            let (src, dst, handle) = (live.clone(), copy.clone(), Arc::clone(&seen));
            let mut interrupted = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(workers)
                .checkpoint(&live, 1)
                .observer_factory(move |_| {
                    Box::new(CopyOnWritten {
                        src: src.clone(),
                        dst: dst.clone(),
                        fire_at: 2,
                        seen: Arc::clone(&handle),
                    })
                })
                .build_parallel()
                .unwrap();
            interrupted.run_all().unwrap();
            assert!(
                copy.exists(),
                "{workers} workers: mid-run checkpoint copied"
            );
            // Resume from the mid-run cut with the warm cache on: the
            // merged records must come out byte-identical to the
            // uninterrupted cache-off run.
            let mut resumed = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(workers)
                .warm_start(true)
                .resume(&copy)
                .build_parallel()
                .unwrap();
            let summary = resumed.run_all().unwrap();
            let _ = std::fs::remove_file(&live);
            let _ = std::fs::remove_file(&copy);
            assert_eq!(summary, reference.summary(), "{workers} workers");
            assert_eq!(resumed.records(), reference.records(), "{workers} workers");
        }
    }

    #[test]
    fn resume_redistributes_across_topology_changes() {
        use std::sync::atomic::AtomicU64;
        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        let live = ck_path("topo-live");
        let copy = ck_path("topo-copy");
        let seen = Arc::new(AtomicU64::new(0));
        let (src, dst, handle) = (live.clone(), copy.clone(), Arc::clone(&seen));
        let mut interrupted = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(4)
            .checkpoint(&live, 1)
            .observer_factory(move |_| {
                Box::new(CopyOnWritten {
                    src: src.clone(),
                    dst: dst.clone(),
                    fire_at: 2,
                    seen: Arc::clone(&handle),
                })
            })
            .build_parallel()
            .unwrap();
        interrupted.run_all().unwrap();
        // Different worker count AND a different shard policy: the exact
        // per-shard restore does not apply, so the pending bag is
        // redistributed — scheduling changes, merged records must not.
        let mut resumed = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .shard_strategy(|_| Box::new(Bfs::<Prescription>::new()))
            .resume(&copy)
            .build_parallel()
            .unwrap();
        let summary = resumed.run_all().unwrap();
        let _ = std::fs::remove_file(&live);
        let _ = std::fs::remove_file(&copy);
        assert_eq!(summary, reference.summary());
        assert_eq!(resumed.records(), reference.records());
    }

    #[test]
    fn truncated_resume_keeps_the_canonical_prefix() {
        use std::sync::atomic::AtomicU64;
        let reference = {
            let mut par = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(1)
                .limit(5)
                .build_parallel()
                .unwrap();
            par.run_all().unwrap();
            par
        };
        let live = ck_path("trunc-live");
        let copy = ck_path("trunc-copy");
        let seen = Arc::new(AtomicU64::new(0));
        let (src, dst, handle) = (live.clone(), copy.clone(), Arc::clone(&seen));
        let mut interrupted = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .limit(5)
            .checkpoint(&live, 1)
            .observer_factory(move |_| {
                Box::new(CopyOnWritten {
                    src: src.clone(),
                    dst: dst.clone(),
                    fire_at: 2,
                    seen: Arc::clone(&handle),
                })
            })
            .build_parallel()
            .unwrap();
        interrupted.run_all().unwrap();
        // The copy carries the watermark: the resumed truncated run must
        // return the same canonical limit-lowest-id prefix.
        let mut resumed = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .limit(5)
            .resume(&copy)
            .build_parallel()
            .unwrap();
        let summary = resumed.run_all().unwrap();
        let _ = std::fs::remove_file(&live);
        let _ = std::fs::remove_file(&copy);
        assert_eq!(summary.paths, 5);
        assert!(summary.truncated);
        assert_eq!(summary, reference.summary());
        assert_eq!(resumed.records(), reference.records());
    }

    #[test]
    fn checkpointed_failing_run_resumes_into_the_same_error() {
        // Unknown syscall on the flipped (a1 == 7) path: a replay *error*,
        // not an error path — run_all fails, and the failed prescription
        // is persisted as loose pending work.
        const BAD_SYSCALL: &str = r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a2, 7
    bne a1, a2, ok
    li a7, 999
    ecall
ok:
    li a0, 0
    li a7, 93
    ecall
"#;
        let path = ck_path("fail");
        let mut failing = Session::builder(Spec::rv32im())
            .binary(&elf(BAD_SYSCALL))
            .workers(2)
            .checkpoint(&path, 1)
            .build_parallel()
            .unwrap();
        let err = failing.run_all().unwrap_err();
        assert!(matches!(
            err,
            Error::Exec(crate::machine::ExecError::UnknownSyscall { .. })
        ));
        assert!(path.exists(), "periodic checkpoint survives the failure");
        // Resume re-replays the persisted pending prescription and — replay
        // being pure — deterministically re-derives the same error.
        let mut resumed = Session::builder(Spec::rv32im())
            .binary(&elf(BAD_SYSCALL))
            .workers(2)
            .resume(&path)
            .build_parallel()
            .unwrap();
        let err = resumed.run_all().unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            err,
            Error::Exec(crate::machine::ExecError::UnknownSyscall { .. })
        ));
    }

    #[test]
    fn checkpoint_events_reach_counting_observers() {
        let path = ck_path("counters");
        let counters = Arc::new(Mutex::new(CountingObserver::new()));
        let handle = Arc::clone(&counters);
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .checkpoint(&path, 1)
            .observer_factory(move |_| Box::new(Arc::clone(&handle)))
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        {
            let c = counters.lock().unwrap();
            // One write per committed path plus the coordinator's drain.
            assert_eq!(c.checkpoints_written, s.paths + 1);
            assert_eq!(c.resumed_from, 0);
        }
        let counters = Arc::new(Mutex::new(CountingObserver::new()));
        let handle = Arc::clone(&counters);
        let mut resumed = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .resume(&path)
            .observer_factory(move |_| Box::new(Arc::clone(&handle)))
            .build_parallel()
            .unwrap();
        resumed.run_all().unwrap();
        let _ = std::fs::remove_file(&path);
        let c = counters.lock().unwrap();
        assert_eq!(c.resumed_from, 1, "coordinator reports the resume seed");
        assert_eq!(c.checkpoints_written, 0, "resume alone writes nothing");
    }

    #[test]
    fn resume_rejects_mismatched_or_missing_checkpoints() {
        let path = ck_path("meta");
        let mut first = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .checkpoint(&path, 4)
            .build_parallel()
            .unwrap();
        first.run_all().unwrap();
        // Wrong binary: the symbolic input length disagrees.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf(WITH_BUG))
            .workers(1)
            .resume(&path)
            .build_parallel()
            .unwrap()
            .run_all()
            .unwrap_err();
        assert!(matches!(err, Error::Persist(PersistError::Mismatch { .. })));
        // Wrong path limit: truncation is result-shaping.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .limit(5)
            .resume(&path)
            .build_parallel()
            .unwrap()
            .run_all()
            .unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(matches!(err, Error::Persist(PersistError::Mismatch { .. })));
        // Missing file: a session-level Io error, never a panic.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .resume(ck_path("missing"))
            .build_parallel()
            .unwrap()
            .run_all()
            .unwrap_err();
        assert!(matches!(err, Error::Persist(PersistError::Io(_))));
    }

    #[test]
    fn persistence_builder_validation() {
        let elf = elf(THREE_COMPARES);
        // Sequential build refuses checkpoint/resume (they persist the
        // sharded frontier).
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .checkpoint("/tmp/x.ck", 4)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .resume("/tmp/x.ck")
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // A zero write interval is meaningless.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .checkpoint("/tmp/x.ck", 0)
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
    }

    #[test]
    fn bag_partition_concatenates_into_the_canonical_stream() {
        // The multi-process sharding invariant, in-process: materialize the
        // root once, split the level-1 prescriptions into contiguous
        // id-sorted chunks, drain each chunk in its own session, and the
        // concatenation [root] + chunk0 + chunk1 + … IS the single-process
        // merged stream — because a PathId's subtree occupies a contiguous
        // interval of the canonical order.
        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        let parent = parallel(THREE_COMPARES, 2);
        let (root_record, mut level1) = parent.expand_root().unwrap();
        level1.sort_by(|a, b| a.id.cmp(&b.id));
        let chunk = level1.len().div_ceil(2).max(1);
        let mut merged = vec![root_record];
        let mut solver_checks = 0;
        while !level1.is_empty() {
            let rest = level1.split_off(chunk.min(level1.len()));
            let mut child = parallel(THREE_COMPARES, 2);
            let s = child.run_bag(level1).unwrap();
            solver_checks += s.solver_checks;
            merged.extend(child.records().iter().cloned());
            level1 = rest;
        }
        assert_eq!(merged.as_slice(), reference.records());
        assert_eq!(solver_checks, reference.summary().solver_checks);
    }
}
