//! Work-stealing parallel exploration: [`ParallelSession`].
//!
//! The sequential [`crate::Session`] is bounded by one core: one frontier,
//! one term manager, one incremental solver. `ParallelSession` shards the
//! same exploration across N worker threads **without** making any of the
//! engine state `Sync`: the unit of work shipped between threads is a
//! plain-data [`Prescription`] (see [`crate::prescribe`]), and each worker
//! owns a complete engine — its own [`TermManager`], [`SolverBackend`],
//! and [`PathExecutor`] — on which any prescription can be replayed from
//! scratch.
//!
//! # Worker topology
//!
//! Every worker has a shard-local frontier (a [`PrescriptionStrategy`])
//! guarded by its own lock. A worker pushes the prescriptions spawned by
//! its own paths onto its own shard and pops from it LIFO-deep (under the
//! default depth-first policy); when its shard runs dry it *steals* from a
//! victim's shard cold end — the shallowest pending flip, i.e. the largest
//! unexplored subtree. Exploration terminates when every shard is empty
//! and no worker holds in-flight work.
//!
//! # Determinism
//!
//! Replaying a prescription is a pure function of the prescription itself:
//! the worker resets its term manager (restoring fresh handle numbering,
//! see [`TermManager::reset`]) and solves the flip query in a brand-new
//! backend from the builder's factory. Scheduling — worker count, steal
//! order, shard policy — therefore cannot change any individual result,
//! only which worker computes it. The merged output is sorted by
//! [`PathId`], which reproduces the sequential depth-first discovery
//! order, so the final [`Summary`] (and the [`PathRecord`] stream) is
//! byte-identical across 1/2/4/8 workers and across repeated runs, and its
//! path ordering — the sequence of branch-decision fingerprints — is
//! identical to the sequential session's discovery order. (Witness
//! *inputs* for a path are whichever model the solver returns; the
//! sequential session's long-lived incremental solver may pick a
//! different, equally valid model than the fresh replay context, exactly
//! as [`crate::BitblastBackend::fresh_per_query`] may.)
//!
//! The price of replay is re-executing each parent prefix once per spawned
//! flip (bounded by the early-stopping
//! [`PathExecutor::execute_prefix`]) and forgoing cross-query solver
//! incrementality; the parallel speedup has to buy that back, which it
//! does on multi-core hardware for the big Table I workloads (see the
//! `engines` bench). [`crate::SessionBuilder::warm_start`] claws most of
//! that price back *without* giving up determinism: each worker keeps a
//! bounded cache keyed by parent input that reuses the parent-prefix
//! trail and its bit-blast across consecutive prescriptions from the same
//! subtree, solving each flip in a disposable frame on top — bit-identical
//! results, cheaper replays (see [`crate::warm`] and ablation 3).
//!
//! # Canonical truncation
//!
//! A truncated run ([`crate::SessionBuilder::limit`]) is schedule-
//! independent too: it returns the `limit` **lowest-`PathId`** paths of the
//! full exploration — i.e. the exact prefix an unbounded run's merged
//! stream would start with — not the first `limit` paths that happened to
//! *finish*. Workers over-collect under a shrinking watermark (the
//! `limit`-th smallest materialized id so far): a prescription whose id
//! already exceeds the watermark can never enter the final prefix — and,
//! parents ordering before descendants, neither can anything it would
//! spawn — so it is pruned without replay, and the merged, `PathId`-sorted
//! record list is trimmed at the `limit`-th path. Query records ride the
//! same trim, so summaries and records of truncated runs are byte-identical
//! across 1..N workers, repeated runs, and shard policies.
//!
//! Replay errors obey the same cut: a truncated run keeps exploring past
//! an error and decides at merge time — the error surfaces iff its id
//! sorts before the `limit`-th path (i.e. the sequential engine would
//! have hit it before stopping); an error beyond the cut belongs to work
//! the truncated exploration never owed anyone and is dropped. Stopping
//! at the first error observed would make the outcome a race.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use binsym_smt::{SatResult, TermManager};

use crate::backend::{SolverBackend, StaticGate};
use crate::error::Error;
use crate::machine::{StepResult, TrailEntry};
use crate::metrics::{InstrumentationConfig, Instruments, Phase};
use crate::observe::{NullObserver, Observer};
use crate::prescribe::{Flip, PathId, PathRecord, Prescription};
use crate::session::{ErrorPath, PathExecutor, Progress, Summary};
use crate::strategy::PrescriptionStrategy;
use crate::warm::WarmCache;

/// Factory producing one [`PathExecutor`] per worker thread.
pub type ExecutorFactory = Arc<dyn Fn() -> Result<Box<dyn PathExecutor>, Error> + Send + Sync>;
/// Factory producing a fresh [`SolverBackend`] per replayed prescription.
pub type BackendFactory = Arc<dyn Fn() -> Box<dyn SolverBackend> + Send + Sync>;
/// Factory producing one [`Observer`] per worker thread (argument: worker
/// index).
pub type ObserverFactory = Arc<dyn Fn(usize) -> Box<dyn Observer> + Send + Sync>;
/// Factory producing one shard-local frontier policy per worker thread
/// (argument: worker index).
pub type ShardStrategyFactory = Arc<dyn Fn(usize) -> Box<dyn PrescriptionStrategy> + Send + Sync>;

const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Prescription>();
    assert_send::<PathRecord>();
    assert_send::<Error>();
    assert_send::<TermManager>();
};

/// Result of replaying one prescription, as recorded by a worker.
#[derive(Debug)]
struct PrescriptionRecord {
    id: PathId,
    /// `Some` when a feasibility query was discharged (every non-root
    /// prescription), with its result.
    query: Option<SatResult>,
    /// The materialized path, when the flip was feasible.
    path: Option<PathRecord>,
}

/// The shared work-stealing frontier.
struct Frontier {
    shards: Vec<Mutex<Box<dyn PrescriptionStrategy>>>,
    /// Prescriptions sitting in shards.
    pending: AtomicUsize,
    /// Prescriptions taken but not yet fully processed (their spawns are
    /// not pushed yet), so an empty `pending` does not imply termination.
    in_flight: AtomicUsize,
    /// Cooperative stop (error or path limit reached).
    stop: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
}

impl Frontier {
    fn new(shards: Vec<Box<dyn PrescriptionStrategy>>) -> Self {
        Frontier {
            shards: shards.into_iter().map(Mutex::new).collect(),
            pending: AtomicUsize::new(0),
            in_flight: AtomicUsize::new(0),
            stop: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
        }
    }

    fn push_batch(&self, shard: usize, batch: Vec<Prescription>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len();
        {
            let mut s = self.shards[shard].lock().expect("shard lock");
            for p in batch {
                s.push(p);
            }
        }
        self.pending.fetch_add(n, Ordering::SeqCst);
        if n == 1 {
            self.idle_cv.notify_one();
        } else {
            self.idle_cv.notify_all();
        }
    }

    /// Blocks until a prescription is available (own shard first, then
    /// stealing round-robin), or until exploration is over.
    fn acquire(&self, me: usize) -> Option<Prescription> {
        loop {
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            if let Some(p) = self.shards[me].lock().expect("shard lock").pop() {
                self.checkout();
                return Some(p);
            }
            for k in 1..self.shards.len() {
                let victim = (me + k) % self.shards.len();
                if let Some(p) = self.shards[victim].lock().expect("shard lock").steal() {
                    self.checkout();
                    return Some(p);
                }
            }
            if self.pending.load(Ordering::SeqCst) == 0
                && self.in_flight.load(Ordering::SeqCst) == 0
            {
                self.idle_cv.notify_all();
                return None;
            }
            // Somebody is still working and may spawn more; doze briefly.
            // The timeout bounds any lost-wakeup window.
            let guard = self.idle_lock.lock().expect("idle lock");
            let _ = self
                .idle_cv
                .wait_timeout(guard, Duration::from_millis(1))
                .expect("idle wait");
        }
    }

    fn checkout(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        self.in_flight.fetch_add(1, Ordering::SeqCst);
    }

    fn release(&self) {
        if self.in_flight.fetch_sub(1, Ordering::SeqCst) == 1
            && self.pending.load(Ordering::SeqCst) == 0
        {
            // Possibly the last unit of work: wake idlers so they can exit.
            self.idle_cv.notify_all();
        }
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        self.idle_cv.notify_all();
    }
}

/// The `limit` lowest materialized [`PathId`]s so far, as a bounded
/// max-heap. Once full, its maximum is a *watermark*: any prescription
/// whose id exceeds it can never enter the final truncated prefix (and,
/// parents ordering before descendants, neither can its whole subtree), so
/// workers prune such work without replaying it. The watermark only ever
/// tightens, which makes pruning canonical: everything below the final
/// watermark is guaranteed to be materialized on every schedule.
struct Watermark {
    limit: usize,
    heap: std::collections::BinaryHeap<PathId>,
}

impl Watermark {
    fn new(limit: u64) -> Self {
        Watermark {
            limit: usize::try_from(limit).unwrap_or(usize::MAX),
            heap: std::collections::BinaryHeap::new(),
        }
    }

    /// Records a materialized path id.
    fn insert(&mut self, id: PathId) {
        self.heap.push(id);
        if self.heap.len() > self.limit {
            self.heap.pop();
        }
    }

    /// True when `id` can no longer enter the `limit` lowest ids.
    fn prunes(&self, id: &PathId) -> bool {
        self.heap.len() >= self.limit && self.heap.peek().is_some_and(|max| id > max)
    }
}

/// Shared run state beyond the frontier.
struct RunState {
    frontier: Frontier,
    /// Canonical truncation state; `None` for unbounded runs.
    watermark: Option<Mutex<Watermark>>,
    /// First error in canonical order: workers keep the error whose
    /// prescription id sorts smallest, so the reported failure is
    /// schedule-independent.
    error: Mutex<Option<(PathId, Error)>>,
}

impl RunState {
    /// Records a replay error, keeping the canonically-first one.
    ///
    /// Unbounded runs stop immediately — the run is lost either way. A
    /// *truncated* run keeps exploring: whether this error lies inside the
    /// canonical `limit`-prefix (and must surface) or beyond it (and must
    /// be dropped, exactly as the sequential engine would never have
    /// reached it) is only decidable once the watermark has converged, so
    /// stopping here would make the outcome schedule-dependent.
    fn record_error(&self, id: PathId, e: Error) {
        // A root-id error (worker startup, root-prescription replay) sorts
        // before any cut, so it surfaces on every schedule — stopping
        // early is safe and spares the surviving workers a doomed
        // exploration.
        let always_surfaces = self.watermark.is_none() || id == PathId::root();
        let mut slot = self.error.lock().expect("error lock");
        match &*slot {
            Some((winner, _)) if *winner <= id => {}
            _ => *slot = Some((id, e)),
        }
        if always_surfaces {
            self.frontier.request_stop();
        }
    }

    /// True when `id` is already past the truncation watermark.
    fn pruned(&self, id: &PathId) -> bool {
        self.watermark
            .as_ref()
            .is_some_and(|w| w.lock().expect("watermark lock").prunes(id))
    }

    /// Notes a materialized path for the truncation watermark and, in the
    /// same lock scope, sheds the spawns the tightened watermark already
    /// rules out.
    fn note_path(&self, id: &PathId, spawned: &mut Vec<Prescription>) {
        if let Some(w) = &self.watermark {
            let mut w = w.lock().expect("watermark lock");
            w.insert(id.clone());
            spawned.retain(|s| !w.prunes(&s.id));
        }
    }
}

/// A sharded, work-stealing exploration of one binary: N worker threads,
/// each owning a complete engine, cooperating through replayable
/// [`Prescription`]s. Built by [`crate::SessionBuilder::build_parallel`];
/// see the [module docs](self) for topology and determinism guarantees.
pub struct ParallelSession {
    workers: usize,
    executor_factory: ExecutorFactory,
    backend_factory: BackendFactory,
    observer_factory: Option<ObserverFactory>,
    shard_strategy: ShardStrategyFactory,
    fuel: u64,
    limit: Option<u64>,
    input_len: u32,
    /// Per-worker warm-start cache bound; `None` = cache off (the
    /// default). See [`crate::warm`] — affects wall time only, never
    /// results.
    warm_capacity: Option<usize>,
    /// The word-level static-analysis gate screening flip queries before
    /// any bit-blast (on by default). Affects wall time only, never
    /// merged records.
    gate: StaticGate,
    /// Metrics/trace/progress wiring ([`crate::SessionBuilder::metrics`],
    /// `::trace`, `::progress`). Like the warm cache and the gate,
    /// instrumentation affects wall time only, never merged records.
    instrumentation: InstrumentationConfig,
    strategy_name: &'static str,
    backend_name: &'static str,
    done: bool,
    summary: Summary,
    records: Vec<PathRecord>,
}

impl std::fmt::Debug for ParallelSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelSession")
            .field("workers", &self.workers)
            .field("strategy", &self.strategy_name)
            .field("backend", &self.backend_name)
            .field("paths", &self.summary.paths)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl ParallelSession {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        workers: usize,
        executor_factory: ExecutorFactory,
        backend_factory: BackendFactory,
        observer_factory: Option<ObserverFactory>,
        shard_strategy: ShardStrategyFactory,
        fuel: u64,
        limit: Option<u64>,
        input_len: u32,
        warm_capacity: Option<usize>,
        gate: StaticGate,
        instrumentation: InstrumentationConfig,
    ) -> Self {
        let strategy_name = shard_strategy(0).name();
        let backend_name = if warm_capacity.is_some() {
            "bitblast-warm"
        } else {
            backend_factory().name()
        };
        ParallelSession {
            workers,
            executor_factory,
            backend_factory,
            observer_factory,
            shard_strategy,
            fuel,
            limit,
            input_len,
            warm_capacity,
            gate,
            instrumentation,
            strategy_name,
            backend_name,
            done: false,
            summary: Summary::default(),
            records: Vec::new(),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Length of the symbolic input region in bytes.
    pub fn input_len(&self) -> u32 {
        self.input_len
    }

    /// Name of the shard-local path-selection policy.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy_name
    }

    /// Name of the per-query solver backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend_name
    }

    /// True when the deterministic prefix-keyed warm start is enabled
    /// ([`crate::SessionBuilder::warm_start`]).
    pub fn warm_start(&self) -> bool {
        self.warm_capacity.is_some()
    }

    /// True once [`ParallelSession::run_all`] has completed.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Totals of the completed exploration (empty before
    /// [`ParallelSession::run_all`]).
    pub fn summary(&self) -> Summary {
        self.summary.clone()
    }

    /// The deterministic merged event stream: one record per materialized
    /// path, sorted by [`PathId`] — i.e. in sequential depth-first
    /// discovery order, independent of worker count and scheduling. Empty
    /// before [`ParallelSession::run_all`].
    pub fn records(&self) -> &[PathRecord] {
        &self.records
    }

    /// Runs the sharded exploration to completion (or to the path limit)
    /// and returns the merged [`Summary`]. After a successful run,
    /// subsequent calls return the cached summary without re-exploring; a
    /// *failed* run is never cached — calling again re-explores and
    /// deterministically reproduces the error.
    ///
    /// # Errors
    /// Returns the canonically-first [`Error`] if any worker fails to
    /// replay a prescription (decode error, unknown syscall, fuel
    /// exhaustion).
    pub fn run_all(&mut self) -> Result<Summary, Error> {
        if self.done {
            return Ok(self.summary());
        }
        let shards: Vec<Box<dyn PrescriptionStrategy>> = (0..self.workers)
            .map(|i| (self.shard_strategy)(i))
            .collect();
        let state = RunState {
            frontier: Frontier::new(shards),
            watermark: self.limit.map(|l| Mutex::new(Watermark::new(l))),
            error: Mutex::new(None),
        };
        state.frontier.push_batch(
            0,
            vec![Prescription::root(vec![0u8; self.input_len as usize])],
        );

        // One `Instruments` handle per worker, all sharing the registry and
        // sink but each stamping its own track (worker index); track
        // `self.workers` is reserved for the coordinator's merge phase.
        let base_instr = Instruments::new(
            self.instrumentation.metrics.clone(),
            self.instrumentation.trace.clone(),
            0,
        );
        let mut outputs: Vec<Vec<PrescriptionRecord>> = Vec::with_capacity(self.workers);
        let progress_stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(self.workers);
            for idx in 0..self.workers {
                let state = &state;
                let executor_factory = Arc::clone(&self.executor_factory);
                let backend_factory = Arc::clone(&self.backend_factory);
                let observer_factory = self.observer_factory.clone();
                let fuel = self.fuel;
                let warm_capacity = self.warm_capacity;
                let gate = self.gate;
                let instr = base_instr.for_track(idx as u32);
                handles.push(scope.spawn(move || {
                    worker_main(
                        idx,
                        state,
                        &*executor_factory,
                        &*backend_factory,
                        observer_factory.as_deref(),
                        fuel,
                        warm_capacity,
                        gate,
                        instr,
                    )
                }));
            }
            // The periodic stderr reporter runs off the workers' hot paths
            // entirely: it reads the shared registry (relaxed loads) and the
            // frontier's pending gauge on its own thread, so enabling it
            // cannot perturb results.
            let reporter = self.instrumentation.progress.map(|interval| {
                let registry = self.instrumentation.metrics.clone();
                let coverage = self.instrumentation.progress_coverage.clone();
                let state = &state;
                let stop = &progress_stop;
                scope.spawn(move || {
                    let mut progress = Progress::new(interval, coverage);
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(Duration::from_millis(20));
                        progress.tick(
                            registry.as_ref(),
                            Some(state.frontier.pending.load(Ordering::Relaxed)),
                        );
                    }
                })
            });
            for h in handles {
                outputs.push(h.join().expect("worker panicked"));
            }
            progress_stop.store(true, Ordering::Relaxed);
            if let Some(h) = reporter {
                h.join().expect("progress reporter panicked");
            }
        });

        let mut error = state.error.lock().expect("error lock").take();
        if self.limit.is_none() {
            if let Some((_, e)) = error.take() {
                // A failed run is not cached (`done` stays false): retrying
                // re-explores and, replay being deterministic, reproduces
                // the same error instead of masking it behind an empty
                // summary.
                return Err(e);
            }
        }

        // Deterministic merge: canonical (sequential depth-first) order.
        // Timed on the coordinator track (`self.workers`) so the trace
        // shows the sequential tail after the worker tracks go quiet.
        let merge_instr = base_instr.for_track(self.workers as u32);
        let merge_started = merge_instr.begin(Phase::Merge);
        let mut all: Vec<PrescriptionRecord> = outputs.into_iter().flatten().collect();
        all.sort_by(|a, b| a.id.cmp(&b.id));

        // Canonical truncation: workers over-collected under the shrinking
        // watermark; keep exactly the `limit` lowest-id paths — the prefix
        // an unbounded run's merged stream starts with — and the query
        // records up to and including the last kept path. Records past the
        // cut (racers and their queries) are schedule-dependent and must
        // not surface.
        let mut truncated = false;
        if let Some(limit) = self.limit {
            let mut paths = 0u64;
            let mut cut = all.len();
            let mut cut_id = None;
            for (i, rec) in all.iter().enumerate() {
                if rec.path.is_some() {
                    paths += 1;
                    if paths == limit {
                        cut = i + 1;
                        cut_id = Some(&rec.id);
                        break;
                    }
                }
            }
            // A replay error surfaces iff the sequential engine would have
            // hit it before its `limit`-th path: its id sorts before the
            // cut (or the limit was never reached). Every prescription
            // below the final watermark is processed on every schedule, so
            // this decision — and the canonically-first error it returns —
            // is schedule-independent. Errors beyond the cut belong to
            // work the truncated exploration never owed anyone.
            if let Some((eid, e)) = error.take() {
                let surfaces = match cut_id {
                    None => true,
                    Some(cid) => eid < *cid,
                };
                if surfaces {
                    // Close the merge span before bailing so traced runs
                    // keep every `B` event balanced even on error.
                    merge_instr.finish(merge_started, Phase::Merge, &mut NullObserver);
                    return Err(e);
                }
            }
            truncated = paths >= limit;
            all.truncate(cut);
        }
        self.done = true;

        let mut summary = Summary {
            truncated,
            ..Summary::default()
        };
        let mut records = Vec::new();
        for rec in all {
            if rec.query.is_some() {
                summary.solver_checks += 1;
            }
            if let Some(path) = rec.path {
                summary.paths += 1;
                summary.total_steps += path.steps;
                summary.max_trail_len = summary.max_trail_len.max(path.trail_len);
                match path.exit {
                    StepResult::Exited(0) | StepResult::Continue => {}
                    StepResult::Exited(code) => summary.error_paths.push(ErrorPath {
                        exit_code: Some(code),
                        input: path.input.clone(),
                    }),
                    StepResult::Break => summary.error_paths.push(ErrorPath {
                        exit_code: None,
                        input: path.input.clone(),
                    }),
                }
                records.push(path);
            }
        }
        self.summary = summary;
        self.records = records;
        merge_instr.finish(merge_started, Phase::Merge, &mut NullObserver);
        Ok(self.summary())
    }
}

/// One worker: pull prescriptions, replay each on the worker's own engine
/// in a fresh solver context (or through the worker's warm-start cache),
/// record results, spawn follow-up work.
#[allow(clippy::too_many_arguments)]
fn worker_main(
    idx: usize,
    state: &RunState,
    executor_factory: &(dyn Fn() -> Result<Box<dyn PathExecutor>, Error> + Send + Sync),
    backend_factory: &(dyn Fn() -> Box<dyn SolverBackend> + Send + Sync),
    observer_factory: Option<&(dyn Fn(usize) -> Box<dyn Observer> + Send + Sync)>,
    fuel: u64,
    warm_capacity: Option<usize>,
    gate: StaticGate,
    instr: Instruments,
) -> Vec<PrescriptionRecord> {
    let mut executor = match executor_factory() {
        Ok(e) => e,
        Err(e) => {
            state.record_error(PathId::root(), e);
            return Vec::new();
        }
    };
    let mut observer: Box<dyn Observer> = match observer_factory {
        Some(f) => f(idx),
        None => Box::new(NullObserver),
    };
    let mut tm = TermManager::new();
    let mut warm = warm_capacity.map(WarmCache::new);
    let mut out = Vec::new();

    while let Some(p) = state.frontier.acquire(idx) {
        // Balance the frontier's in-flight count on every exit from this
        // iteration — including an unwind out of user code (executor,
        // backend, or observer panics). Without this, a panicking worker
        // would leave `in_flight` elevated and the surviving workers would
        // doze forever in `acquire` while the main thread blocks joining.
        let _checked_in = InFlightGuard(&state.frontier);
        // Canonical truncation: ids past the watermark can never enter the
        // final `limit`-lowest prefix, and neither can their descendants —
        // skip the replay entirely, recording nothing.
        if state.pruned(&p.id) {
            continue;
        }
        // A fresh engine context per prescription: reset handle numbering
        // and solve in a brand-new backend — or, with warm start on, in a
        // cached prefix context whose answers are bit-identical to the
        // fresh one (see `crate::warm`). Either way the replay is a pure
        // function of the prescription (schedule-independent results).
        let outcome = match &mut warm {
            Some(cache) => replay_warm(
                &mut *executor,
                &mut tm,
                cache,
                &mut *observer,
                &p,
                fuel,
                gate,
                &instr,
            ),
            None => {
                tm.reset();
                let mut backend = backend_factory();
                replay(
                    &mut *executor,
                    &mut tm,
                    &mut *backend,
                    &mut *observer,
                    &p,
                    fuel,
                    gate,
                    &instr,
                )
            }
        };
        match outcome {
            Err(e) => {
                let stopping = state.watermark.is_none();
                state.record_error(p.id, e);
                if stopping {
                    break;
                }
                // Truncated run: the erroring prescription contributes no
                // record and spawns nothing; whether the error surfaces is
                // decided canonically at merge time.
                continue;
            }
            Ok((query, materialized)) => {
                let mut record = PrescriptionRecord {
                    id: p.id,
                    query,
                    path: None,
                };
                if let Some((path, mut spawned)) = materialized {
                    // Note the path and shed spawns the tightened
                    // watermark already rules out, then push the rest
                    // before the guard releases in-flight, so the
                    // termination check never sees a window with neither
                    // pending nor in-flight work.
                    state.note_path(&record.id, &mut spawned);
                    record.path = Some(path);
                    state.frontier.push_batch(idx, spawned);
                }
                out.push(record);
            }
        }
    }
    out
}

/// Releases one unit of in-flight work when dropped; on an unwind it also
/// stops the run so the sibling workers exit instead of exploring on while
/// the main thread re-raises the panic from `join`.
struct InFlightGuard<'a>(&'a Frontier);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.request_stop();
        }
        self.0.release();
    }
}

/// Replays one prescription on the given engine: solve the flip (if any),
/// materialize the path, and derive the prescriptions of its unexplored
/// suffix. Pure in the prescription given a fresh `tm`/`backend` context.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn replay(
    executor: &mut dyn PathExecutor,
    tm: &mut TermManager,
    backend: &mut dyn SolverBackend,
    observer: &mut dyn Observer,
    p: &Prescription,
    fuel: u64,
    gate: StaticGate,
    instr: &Instruments,
) -> Result<(Option<SatResult>, Option<(PathRecord, Vec<Prescription>)>), Error> {
    let (query, input) = match p.flip {
        None => (None, p.input.clone()),
        Some(flip) => {
            let replay_started = instr.begin(Phase::Replay);
            let trail = executor.execute_prefix(tm, &p.input, fuel, flip.ord + 1);
            instr.finish(replay_started, Phase::Replay, observer);
            let trail = trail?;
            let (i, cond) = flip.locate(&trail)?;
            // Terms are interned in the same order whether or not the gate
            // screens the query, so gated and ungated replays build
            // identical term handles (and hence identical CNF and models).
            let prefix: Vec<_> = trail[..i].iter().map(|e| e.path_term(tm)).collect();
            let flipped = if flip.taken { tm.not(cond) } else { cond };
            let gate_started = instr.begin(Phase::Gate);
            let screened = gate.screen(tm, &prefix, flipped, &p.input);
            instr.finish(gate_started, Phase::Gate, observer);
            if let Some(report) = screened {
                observer.on_static_analysis(&report.stats);
                match report.verdict {
                    // Eliminated: no solver check, no `on_query`, and a
                    // `query: None` record so the merge counts nothing.
                    Some((SatResult::Unsat, _)) => return Ok((None, None)),
                    Some((SatResult::Sat, bytes)) => {
                        let bytes = bytes.expect("sat verdict carries witness bytes");
                        return materialize(executor, tm, observer, p, fuel, None, bytes, instr);
                    }
                    None => {}
                }
            }
            let blast_started = instr.begin(Phase::BitBlast);
            backend.push();
            for &t in &prefix {
                backend.assert_term(tm, t);
            }
            backend.assert_term(tm, flipped);
            instr.finish(blast_started, Phase::BitBlast, observer);
            let solve_started = instr.begin(Phase::Solve);
            let r = backend.check_sat(tm);
            let solve_nanos = instr.finish(solve_started, Phase::Solve, observer);
            if solve_started.is_some() {
                instr.record_query(solve_nanos);
            }
            observer.on_query(r);
            if r != SatResult::Sat {
                backend.pop();
                return Ok((Some(r), None));
            }
            let model = backend.model(tm).expect("sat has model");
            let bytes = crate::prescribe::witness_bytes(&model, executor.input_len());
            backend.pop();
            (Some(r), bytes)
        }
    };

    materialize(executor, tm, observer, p, fuel, query, input, instr)
}

/// The warm-start counterpart of [`replay`]: the flip query goes through
/// the worker's [`WarmCache`] (parent-input-keyed trail + blasted-prefix
/// contexts) instead of a fresh backend. The cache guarantees answers
/// bit-identical to [`replay`]'s (see [`crate::warm`]), so the two paths
/// are interchangeable result-wise; only wall time and the
/// [`Observer::on_warm_query`] accounting differ.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn replay_warm(
    executor: &mut dyn PathExecutor,
    tm: &mut TermManager,
    cache: &mut WarmCache,
    observer: &mut dyn Observer,
    p: &Prescription,
    fuel: u64,
    gate: StaticGate,
    instr: &Instruments,
) -> Result<(Option<SatResult>, Option<(PathRecord, Vec<Prescription>)>), Error> {
    let (query, input) = match p.flip {
        None => (None, p.input.clone()),
        Some(flip) => {
            let (r, bytes, warm_stats, sa_stats) =
                cache.solve_flip(executor, &p.input, flip, fuel, gate, instr, observer)?;
            if let Some(sa) = &sa_stats {
                observer.on_static_analysis(sa);
            }
            // An eliminated query carries no warm stats: it fires neither
            // `on_query` nor `on_warm_query` and records `query: None`, so
            // the merge's solver-check count matches an analysis-off run
            // minus exactly the eliminated queries.
            if let Some(warm) = &warm_stats {
                observer.on_query(r);
                observer.on_warm_query(warm);
            }
            let query = warm_stats.is_some().then_some(r);
            match bytes {
                None => return Ok((query, None)),
                Some(bytes) => (query, bytes),
            }
        }
    };

    // Materialization runs on the worker's own term manager, reset per
    // path as in the cold path (the cached contexts keep their handles
    // private to the cache).
    tm.reset();
    materialize(executor, tm, observer, p, fuel, query, input, instr)
}

/// Executes the materialized path under `input` and derives the
/// prescriptions of its unexplored suffix — the shared tail of [`replay`]
/// and [`replay_warm`].
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn materialize(
    executor: &mut dyn PathExecutor,
    tm: &mut TermManager,
    observer: &mut dyn Observer,
    p: &Prescription,
    fuel: u64,
    query: Option<SatResult>,
    input: Vec<u8>,
    instr: &Instruments,
) -> Result<(Option<SatResult>, Option<(PathRecord, Vec<Prescription>)>), Error> {
    let execute_started = instr.begin(Phase::Execute);
    let outcome = executor.execute_path(tm, &input, fuel, observer);
    instr.finish(execute_started, Phase::Execute, observer);
    let outcome = outcome?;
    instr.note_path();
    observer.on_path(&input, &outcome);

    let forced = p.flip.map_or(0, |f| f.ord + 1);
    let mut spawned = Vec::new();
    let mut decisions = Vec::new();
    for entry in &outcome.trail {
        if let TrailEntry::Branch { taken, pc, .. } = *entry {
            let ord = decisions.len();
            if ord >= forced {
                spawned.push(Prescription {
                    id: p.id.child(ord),
                    input: input.clone(),
                    flip: Some(Flip { ord, taken, pc }),
                });
            }
            decisions.push(taken);
        }
    }
    let record = PathRecord {
        id: p.id.clone(),
        input,
        exit: outcome.exit,
        steps: outcome.steps,
        trail_len: outcome.trail.len(),
        decisions,
    };
    Ok((query, Some((record, spawned))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observe::CountingObserver;
    use crate::session::Session;
    use crate::strategy::{Bfs, RandomRestart};
    use binsym_asm::Assembler;
    use binsym_isa::Spec;

    const THREE_COMPARES: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    lbu a1, 0(a0)
    bltu a1, a2, c1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
c3:
    li a0, 0
    li a7, 93
    ecall
"#;

    const WITH_BUG: &str = r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a2, 7
    bne a1, a2, ok
    ebreak
ok:
    li a0, 0
    li a7, 93
    ecall
"#;

    fn elf(src: &str) -> binsym_elf::ElfFile {
        Assembler::new().assemble(src).expect("assembles")
    }

    fn parallel(src: &str, workers: usize) -> ParallelSession {
        Session::builder(Spec::rv32im())
            .binary(&elf(src))
            .workers(workers)
            .build_parallel()
            .expect("builds")
    }

    #[test]
    fn matches_sequential_summary_and_path_set() {
        let mut seq = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .build()
            .unwrap();
        // The model-independent fingerprint of each path is its
        // branch-decision vector; the complete path *set* is a semantic
        // property and must agree exactly. The discovery *order* within
        // each engine is DFS over its own solver's models (witness inputs
        // are model choices — the sequential incremental solver and the
        // fresh replay contexts may pick different, equally valid models,
        // reordering sibling subtrees).
        let mut seq_decisions: Vec<Vec<bool>> = seq
            .paths()
            .map(|r| {
                r.unwrap()
                    .trail
                    .iter()
                    .filter_map(|e| match *e {
                        TrailEntry::Branch { taken, .. } => Some(taken),
                        _ => None,
                    })
                    .collect()
            })
            .collect();
        seq_decisions.sort();
        let seq_summary = seq.summary();

        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        for workers in [1, 2, 4] {
            let mut par = parallel(THREE_COMPARES, workers);
            let summary = par.run_all().unwrap();
            assert_eq!(summary.paths, seq_summary.paths, "{workers} workers");
            assert_eq!(summary.total_steps, seq_summary.total_steps);
            assert_eq!(summary.solver_checks, seq_summary.solver_checks);
            assert_eq!(summary.max_trail_len, seq_summary.max_trail_len);
            let mut par_decisions: Vec<Vec<bool>> =
                par.records().iter().map(|r| r.decisions.clone()).collect();
            par_decisions.sort();
            assert_eq!(
                par_decisions, seq_decisions,
                "{workers} workers: path set equals sequential"
            );
            // Across worker counts the merge is byte-identical, witness
            // inputs included.
            assert_eq!(par.records(), reference.records(), "{workers} workers");
            assert_eq!(summary.error_paths, reference.summary().error_paths);
        }
    }

    #[test]
    fn canonical_sort_reproduces_single_worker_dfs_discovery_order() {
        // With one worker and the default depth-first shard policy, the
        // live processing order IS sequential DFS discovery. The merged
        // output is sorted by PathId — so if PathId::Ord is correct, the
        // sort must be a no-op relative to what the worker's observer saw.
        #[derive(Debug, Default)]
        struct DecisionLog(Arc<Mutex<Vec<Vec<bool>>>>);
        impl Observer for DecisionLog {
            fn on_path(&mut self, _input: &[u8], outcome: &crate::session::PathOutcome) {
                let decisions = outcome
                    .trail
                    .iter()
                    .filter_map(|e| match *e {
                        TrailEntry::Branch { taken, .. } => Some(taken),
                        _ => None,
                    })
                    .collect();
                self.0.lock().unwrap().push(decisions);
            }
        }
        let log = Arc::new(Mutex::new(Vec::new()));
        let handle = Arc::clone(&log);
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .observer_factory(move |_| Box::new(DecisionLog(Arc::clone(&handle))))
            .build_parallel()
            .unwrap();
        par.run_all().unwrap();
        let discovery: Vec<Vec<bool>> = log.lock().unwrap().clone();
        let merged: Vec<Vec<bool>> = par.records().iter().map(|r| r.decisions.clone()).collect();
        assert_eq!(merged, discovery, "PathId sort == DFS discovery order");
    }

    #[test]
    fn error_paths_surface_with_witness_inputs() {
        let mut par = parallel(WITH_BUG, 3);
        let s = par.run_all().unwrap();
        assert_eq!(s.paths, 2);
        assert_eq!(s.error_paths.len(), 1);
        assert_eq!(s.error_paths[0].exit_code, None);
        assert_eq!(s.error_paths[0].input, vec![7]);
        assert!(par.is_done());
        // Cached: a second run_all returns the same summary.
        let again = par.run_all().unwrap();
        assert_eq!(again.paths, 2);
    }

    #[test]
    fn shard_policies_do_not_change_merged_results() {
        let reference = parallel(THREE_COMPARES, 2).run_all().unwrap();
        let policies: [ShardStrategyFactory; 2] = [
            Arc::new(|_| Box::new(Bfs::<Prescription>::new())),
            Arc::new(|i| Box::new(RandomRestart::<Prescription>::with_seed(42 + i as u64))),
        ];
        for policy in policies {
            let mut par = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(2)
                .shard_strategy(move |i| policy(i))
                .build_parallel()
                .unwrap();
            let s = par.run_all().unwrap();
            assert_eq!(s.paths, reference.paths);
            assert_eq!(s.error_paths, reference.error_paths);
            assert_eq!(s.total_steps, reference.total_steps);
            assert_eq!(s.solver_checks, reference.solver_checks);
        }
    }

    #[test]
    fn limit_truncates_with_exact_count() {
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(4)
            .limit(5)
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        assert_eq!(s.paths, 5);
        assert!(s.truncated);
    }

    #[test]
    fn worker_observers_fire_per_shard() {
        use std::sync::atomic::AtomicU64;
        #[derive(Debug)]
        struct AtomicCounter(Arc<AtomicU64>);
        impl Observer for AtomicCounter {
            fn on_path(&mut self, _input: &[u8], _outcome: &crate::session::PathOutcome) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let paths_seen = Arc::new(AtomicU64::new(0));
        let handle = Arc::clone(&paths_seen);
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .observer_factory(move |_| Box::new(AtomicCounter(Arc::clone(&handle))))
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        assert_eq!(paths_seen.load(Ordering::SeqCst), s.paths);
    }

    #[test]
    fn counting_observer_is_a_valid_worker_observer() {
        // Worker observers do not need shared handles to be useful in
        // benchmarks (cost models); a plain counter per worker works.
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .observer_factory(|_| Box::new(CountingObserver::new()))
            .build_parallel()
            .unwrap();
        assert_eq!(par.run_all().unwrap().paths, 8);
    }

    #[test]
    fn fuel_exhaustion_is_reported_as_error() {
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .fuel(3)
            .build_parallel()
            .unwrap();
        assert!(matches!(par.run_all(), Err(Error::OutOfFuel { .. })));
        // A failed run is not cached as an empty success: retrying
        // re-explores and reproduces the same error.
        assert!(!par.is_done());
        assert!(matches!(par.run_all(), Err(Error::OutOfFuel { .. })));
        assert!(par.records().is_empty());
    }

    #[test]
    fn truncated_runs_surface_errors_canonically() {
        // An unknown syscall reachable only on the all-flipped path, whose
        // id ([0,1,2]) sorts *last* in canonical order: a truncated run
        // whose prefix ends before it must succeed (the sequential engine
        // would have stopped before ever replaying it), while a budget
        // that forces exploration past every materializable path must
        // surface it — identically on every worker count.
        const LATE_ERROR: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    li a3, 0
    lbu a1, 0(a0)
    bltu a1, a2, c1
    addi a3, a3, 1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
    addi a3, a3, 1
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
    addi a3, a3, 1
c3: li a4, 3
    bne a3, a4, ok
    li a7, 999
    ecall
ok:
    li a0, 0
    li a7, 93
    ecall
"#;
        let image = elf(LATE_ERROR);
        let run = |workers: usize, limit: Option<u64>| {
            let mut builder = Session::builder(Spec::rv32im())
                .binary(&image)
                .workers(workers);
            if let Some(limit) = limit {
                builder = builder.limit(limit);
            }
            builder.build_parallel().unwrap().run_all()
        };
        // Unbounded: the error always surfaces.
        assert!(matches!(
            run(2, None),
            Err(Error::Exec(
                crate::machine::ExecError::UnknownSyscall { .. }
            ))
        ));
        for workers in [1usize, 2, 4] {
            // 7 paths materialize before the erroring prescription in
            // canonical order; a 4-path budget never owes it.
            let s = run(workers, Some(4)).expect("error lies beyond the cut");
            assert_eq!(s.paths, 4, "{workers} workers");
            assert!(s.truncated);
            // A budget the exploration cannot fill forces the error.
            assert!(
                matches!(run(workers, Some(8)), Err(Error::Exec(_))),
                "{workers} workers: unreachable budget surfaces the error"
            );
        }
    }

    #[test]
    fn panicking_worker_observer_propagates_instead_of_deadlocking() {
        #[derive(Debug)]
        struct Bomb;
        impl Observer for Bomb {
            fn on_path(&mut self, _input: &[u8], _outcome: &crate::session::PathOutcome) {
                panic!("observer bomb");
            }
        }
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .observer_factory(|_| Box::new(Bomb))
            .build_parallel()
            .unwrap();
        // The panic must surface through run_all (via the worker join), not
        // hang the surviving workers on a never-released in-flight count.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| par.run_all()));
        assert!(result.is_err(), "worker panic propagates");
    }

    #[test]
    fn warm_start_records_are_byte_identical_to_cache_off() {
        let reference = {
            let mut par = parallel(THREE_COMPARES, 1);
            par.run_all().unwrap();
            par
        };
        for workers in [1usize, 2, 4] {
            let mut warm = Session::builder(Spec::rv32im())
                .binary(&elf(THREE_COMPARES))
                .workers(workers)
                .warm_start(true)
                .build_parallel()
                .unwrap();
            assert!(warm.warm_start());
            assert_eq!(warm.backend_name(), "bitblast-warm");
            let summary = warm.run_all().unwrap();
            assert_eq!(summary.paths, 8, "{workers} workers");
            assert_eq!(
                warm.records(),
                reference.records(),
                "{workers} workers: warm records byte-identical to cache-off"
            );
            assert_eq!(summary.solver_checks, reference.summary().solver_checks);
            assert_eq!(summary.error_paths, reference.summary().error_paths);
        }
    }

    #[test]
    fn warm_start_with_tiny_capacity_stays_identical() {
        let reference = {
            let mut par = parallel(THREE_COMPARES, 2);
            par.run_all().unwrap();
            par
        };
        // Capacity 1 forces constant eviction — results must not care.
        let mut warm = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(2)
            .warm_start(true)
            .warm_capacity(1)
            .build_parallel()
            .unwrap();
        warm.run_all().unwrap();
        assert_eq!(warm.records(), reference.records());
    }

    #[test]
    fn warm_start_reports_cache_stats_through_observers() {
        use std::sync::atomic::AtomicU64;
        #[derive(Debug)]
        struct WarmTally {
            queries: Arc<AtomicU64>,
            warm: Arc<AtomicU64>,
            hits: Arc<AtomicU64>,
        }
        impl Observer for WarmTally {
            fn on_query(&mut self, _r: SatResult) {
                self.queries.fetch_add(1, Ordering::SeqCst);
            }
            fn on_warm_query(&mut self, stats: &crate::observe::WarmQueryStats) {
                self.warm.fetch_add(1, Ordering::SeqCst);
                if stats.cache_hit {
                    self.hits.fetch_add(1, Ordering::SeqCst);
                }
            }
        }
        let queries = Arc::new(AtomicU64::new(0));
        let warm = Arc::new(AtomicU64::new(0));
        let hits = Arc::new(AtomicU64::new(0));
        let (q, w, h) = (Arc::clone(&queries), Arc::clone(&warm), Arc::clone(&hits));
        let mut par = Session::builder(Spec::rv32im())
            .binary(&elf(THREE_COMPARES))
            .workers(1)
            .warm_start(true)
            .observer_factory(move |_| {
                Box::new(WarmTally {
                    queries: Arc::clone(&q),
                    warm: Arc::clone(&w),
                    hits: Arc::clone(&h),
                })
            })
            .build_parallel()
            .unwrap();
        let s = par.run_all().unwrap();
        assert_eq!(
            queries.load(Ordering::SeqCst),
            s.solver_checks,
            "every query observed"
        );
        assert_eq!(
            warm.load(Ordering::SeqCst),
            s.solver_checks,
            "every query carries warm stats"
        );
        assert!(
            hits.load(Ordering::SeqCst) > 0,
            "sibling flips hit the cache"
        );
    }

    #[test]
    fn warm_start_builder_validation() {
        let elf = elf(THREE_COMPARES);
        // Sequential build refuses warm start.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .warm_start(true)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Warm start and a custom backend factory are incompatible.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .warm_start(true)
            .backend_factory(|| Box::new(crate::backend::BitblastBackend::new()))
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Zero capacity is rejected.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .warm_start(true)
            .warm_capacity(0)
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // warm_start(false) with a backend factory stays fine.
        Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .backend_factory(|| Box::new(crate::backend::BitblastBackend::new()))
            .build_parallel()
            .unwrap();
    }

    #[test]
    fn warm_start_surfaces_error_paths_identically() {
        let mut cold = parallel(WITH_BUG, 2);
        let cold_summary = cold.run_all().unwrap();
        let mut warm = Session::builder(Spec::rv32im())
            .binary(&elf(WITH_BUG))
            .workers(2)
            .warm_start(true)
            .build_parallel()
            .unwrap();
        let warm_summary = warm.run_all().unwrap();
        assert_eq!(warm_summary.error_paths, cold_summary.error_paths);
        assert_eq!(warm.records(), cold.records());
    }

    #[test]
    fn builder_validation() {
        let elf = elf(THREE_COMPARES);
        // workers + build() is refused.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(2)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Zero workers.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(0)
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // Sequential-only instances are rejected in parallel mode.
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .observer(CountingObserver::new())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .backend(crate::backend::BitblastBackend::new())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .strategy(crate::strategy::Dfs::new())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
        // No binary at all.
        let err = Session::builder(Spec::rv32im())
            .build_parallel()
            .unwrap_err();
        assert!(matches!(err, Error::MissingBinary));
    }

    #[test]
    fn factory_builder_serves_both_modes() {
        let image = elf(THREE_COMPARES);
        let make = move || -> ExecutorFactory {
            let image = image.clone();
            Arc::new(move || {
                Ok(Box::new(crate::session::SpecExecutor::new(
                    Spec::rv32im(),
                    &image,
                    None,
                )?) as Box<dyn PathExecutor>)
            })
        };
        let f = make();
        let seq = Session::factory_builder(move || f())
            .build()
            .unwrap()
            .run_all()
            .unwrap();
        let f = make();
        let par = Session::factory_builder(move || f())
            .workers(2)
            .build_parallel()
            .unwrap()
            .run_all()
            .unwrap();
        assert_eq!(seq.paths, 8);
        assert_eq!(par.paths, 8);
        assert_eq!(seq.error_paths, par.error_paths);
    }
}
