//! The exploration session: the engine's public entry point.
//!
//! A [`Session`] owns everything one symbolic exploration needs — the path
//! executor, the term manager, a [`PathStrategy`] deciding which branch to
//! flip next, and a [`SolverBackend`] discharging feasibility queries — and
//! is assembled with a builder:
//!
//! ```
//! use binsym::{BitblastBackend, Dfs, Session};
//! # use binsym_asm::Assembler;
//! # use binsym_isa::Spec;
//! # let elf = Assembler::new().assemble("
//! #         .data
//! # __sym_input: .word 0
//! #         .text
//! # _start: li a0, 0
//! #     li a7, 93
//! #     ecall
//! # ").unwrap();
//! let mut session = Session::builder(Spec::rv32im())
//!     .binary(&elf)
//!     .strategy(Dfs::new())
//!     .backend(BitblastBackend::new())
//!     .build()?;
//! let summary = session.run_all()?;
//! # Ok::<(), binsym::Error>(())
//! ```
//!
//! Paths can be consumed **lazily** through [`Session::paths`]: each call
//! to the iterator executes exactly one path and defers the (potentially
//! expensive) next-input search to the following call — so `take(n)`,
//! early `break`, and streaming consumers do no wasted solving.
//! [`Session::run_all`] is a convenience wrapper draining the iterator
//! into a [`Summary`].
//!
//! The exploration algorithm itself is the paper's §III-B offline DSE: the
//! SUT restarts from scratch per path under a concrete solver-provided
//! input; completed trails contribute flip candidates to the strategy's
//! frontier; a candidate's prefix plus negated branch condition is handed
//! to the backend, and a model of a feasible flip seeds the next run.

use std::sync::Arc;
use std::time::{Duration, Instant};

use binsym_elf::ElfFile;
use binsym_isa::Spec;
use binsym_smt::{SatResult, TermManager};

use crate::backend::{BitblastBackend, SolverBackend, StaticGate};
use crate::coverage::CoverageMap;
use crate::error::Error;
use crate::machine::{StepResult, SymMachine, TrailEntry};
use crate::memory::AddressPolicyKind;
use crate::metrics::{Instruments, MetricsRegistry, Phase};
use crate::observe::{NullObserver, Observer};
use crate::parallel::{
    BackendFactory, ExecutorFactory, ObserverFactory, ParallelSession, PersistPlan,
    ShardStrategyFactory,
};
use crate::prescribe::{Flip, PathId, Prescription};
use crate::strategy::{Candidate, Dfs, PathStrategy, PrescriptionStrategy};
use crate::trace::TraceSink;
use crate::SYM_INPUT_SYMBOL;

/// Outcome of executing one path.
#[derive(Debug, Clone)]
pub struct PathOutcome {
    /// How the path terminated.
    pub exit: StepResult,
    /// The recorded path trail.
    pub trail: Vec<TrailEntry>,
    /// Instructions executed.
    pub steps: u64,
    /// The concrete input that drove execution down this path.
    pub input: Vec<u8>,
}

impl PathOutcome {
    /// True when the path terminated abnormally (nonzero exit or `ebreak`).
    pub fn is_error(&self) -> bool {
        !matches!(self.exit, StepResult::Exited(0) | StepResult::Continue)
    }
}

/// An engine capable of executing one SUT path from scratch under a
/// concrete input assignment, recording the symbolic path trail.
///
/// Implementors: the formal-semantics engine ([`SpecExecutor`] — the
/// paper's BinSym), the IR-lifter baseline (`binsym-lifter`), and custom
/// personas plugged in via [`SessionBuilder::executor`].
pub trait PathExecutor {
    /// Executes one complete path with `input` bytes in the symbolic
    /// region, reporting per-instruction progress to `obs`.
    ///
    /// # Errors
    /// Returns [`Error`] on decode errors, unknown syscalls, or fuel
    /// exhaustion.
    fn execute_path(
        &mut self,
        tm: &mut TermManager,
        input: &[u8],
        fuel: u64,
        obs: &mut dyn Observer,
    ) -> Result<PathOutcome, Error>;

    /// Replays the *prefix* of the path driven by `input`: executes until
    /// `branch_limit` symbolic branches have been recorded (or the path
    /// ends), returning the trail. Used by prescription replay
    /// ([`crate::ParallelSession`]), where only the constraint prefix up to
    /// the flipped branch is needed — engines that can stop early save the
    /// path's tail. Replays are never observed (no [`Observer`] hooks fire).
    ///
    /// The default implementation executes the full path and returns its
    /// complete trail, which is correct for any executor.
    ///
    /// # Errors
    /// Returns [`Error`] on execution errors or fuel exhaustion.
    fn execute_prefix(
        &mut self,
        tm: &mut TermManager,
        input: &[u8],
        fuel: u64,
        branch_limit: usize,
    ) -> Result<Vec<TrailEntry>, Error> {
        let _ = branch_limit;
        Ok(self.execute_path(tm, input, fuel, &mut NullObserver)?.trail)
    }

    /// Length of the symbolic input region in bytes.
    fn input_len(&self) -> u32;

    /// The address-concretization policy this executor resolves symbolic
    /// memory accesses with (see [`crate::memory`]). Prescription replay
    /// cross-checks this against the policy recorded in each
    /// [`Prescription`], so an executor configured differently from the
    /// session that produced the prescription fails loudly instead of
    /// diverging silently. The default is the paper's equality
    /// concretization.
    fn policy(&self) -> AddressPolicyKind {
        AddressPolicyKind::ConcretizeEq
    }
}

/// Sharing an executor: the session takes ownership of its executor, so to
/// read accumulated executor state back afterwards (cache statistics, lift
/// counts, …), wrap it in `Rc<RefCell<…>>`, keep a clone, and hand the
/// other clone to [`SessionBuilder::executor`].
impl<E: PathExecutor> PathExecutor for std::rc::Rc<std::cell::RefCell<E>> {
    fn execute_path(
        &mut self,
        tm: &mut TermManager,
        input: &[u8],
        fuel: u64,
        obs: &mut dyn Observer,
    ) -> Result<PathOutcome, Error> {
        self.borrow_mut().execute_path(tm, input, fuel, obs)
    }

    fn execute_prefix(
        &mut self,
        tm: &mut TermManager,
        input: &[u8],
        fuel: u64,
        branch_limit: usize,
    ) -> Result<Vec<TrailEntry>, Error> {
        self.borrow_mut()
            .execute_prefix(tm, input, fuel, branch_limit)
    }

    fn input_len(&self) -> u32 {
        self.borrow().input_len()
    }

    fn policy(&self) -> AddressPolicyKind {
        self.borrow().policy()
    }
}

/// A path that terminated abnormally (nonzero exit status or `ebreak`) —
/// the bug reports of SE-based testing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorPath {
    /// Exit status for `exit` paths; `None` for `ebreak`.
    pub exit_code: Option<u32>,
    /// The concrete input that drives execution down this path.
    pub input: Vec<u8>,
}

/// Exploration result summary.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Summary {
    /// Number of execution paths found (the paper's Table I metric).
    pub paths: u64,
    /// Abnormal terminations with their witness inputs.
    pub error_paths: Vec<ErrorPath>,
    /// Total instructions executed across all paths.
    pub total_steps: u64,
    /// Total SMT `check-sat` queries issued.
    pub solver_checks: u64,
    /// Longest path trail observed (branches + concretizations).
    pub max_trail_len: usize,
    /// True if the path limit stopped exploration early.
    pub truncated: bool,
}

/// Locates the symbolic input region in an ELF image.
///
/// # Errors
/// Returns [`Error::NoSymbolicInput`] if the `__sym_input` symbol is
/// missing.
pub fn find_sym_input(elf: &ElfFile, override_len: Option<u32>) -> Result<(u32, u32), Error> {
    let sym = elf.symbol(SYM_INPUT_SYMBOL).ok_or(Error::NoSymbolicInput)?;
    let sym_addr = sym.value;
    let default_len = if sym.size != 0 {
        sym.size
    } else {
        elf.segments
            .iter()
            .find(|s| (s.vaddr..s.vaddr + s.data.len() as u32).contains(&sym_addr))
            .map(|s| s.vaddr + s.data.len() as u32 - sym_addr)
            .unwrap_or(4)
    };
    Ok((sym_addr, override_len.unwrap_or(default_len)))
}

/// The paper's engine: one path execution = one run of the symbolic
/// modular interpreter over the formal specification.
#[derive(Debug)]
pub struct SpecExecutor {
    spec: Spec,
    elf: ElfFile,
    sym_addr: u32,
    sym_len: u32,
    policy: AddressPolicyKind,
}

impl SpecExecutor {
    /// Creates an executor for a binary with a `__sym_input` region.
    ///
    /// # Errors
    /// Returns [`Error::NoSymbolicInput`] if the symbol is missing.
    pub fn new(spec: Spec, elf: &ElfFile, input_len: Option<u32>) -> Result<Self, Error> {
        let (sym_addr, sym_len) = find_sym_input(elf, input_len)?;
        Ok(SpecExecutor {
            spec,
            elf: elf.clone(),
            sym_addr,
            sym_len,
            policy: AddressPolicyKind::default(),
        })
    }

    /// Sets the address-concretization policy (default:
    /// [`AddressPolicyKind::ConcretizeEq`]).
    #[must_use]
    pub fn with_policy(mut self, policy: AddressPolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Address of the symbolic input region.
    pub fn input_addr(&self) -> u32 {
        self.sym_addr
    }
}

impl PathExecutor for SpecExecutor {
    fn execute_path(
        &mut self,
        tm: &mut TermManager,
        input: &[u8],
        fuel: u64,
        obs: &mut dyn Observer,
    ) -> Result<PathOutcome, Error> {
        let mut m = SymMachine::new(self.spec.clone());
        m.policy = self.policy;
        m.load_elf(&self.elf);
        m.mark_symbolic(tm, self.sym_addr, self.sym_len, "in", input);
        for _ in 0..fuel {
            obs.on_step(m.pc, m.steps);
            let before = m.trail.len();
            let r = m.step(tm)?;
            for entry in &m.trail[before..] {
                if let TrailEntry::Branch { cond, taken, pc } = *entry {
                    obs.on_branch(pc, cond, taken);
                }
            }
            match r {
                StepResult::Continue => {}
                exit => {
                    return Ok(PathOutcome {
                        exit,
                        trail: m.trail,
                        steps: m.steps,
                        input: input.to_vec(),
                    })
                }
            }
        }
        Err(Error::OutOfFuel {
            input: input.to_vec(),
        })
    }

    fn execute_prefix(
        &mut self,
        tm: &mut TermManager,
        input: &[u8],
        fuel: u64,
        branch_limit: usize,
    ) -> Result<Vec<TrailEntry>, Error> {
        // Early-stop replay: a prescription only needs the trail up to its
        // flipped branch, so stop as soon as enough branches are recorded
        // instead of running the path to termination.
        let mut m = SymMachine::new(self.spec.clone());
        m.policy = self.policy;
        m.load_elf(&self.elf);
        m.mark_symbolic(tm, self.sym_addr, self.sym_len, "in", input);
        let mut branches = 0usize;
        for _ in 0..fuel {
            let before = m.trail.len();
            let r = m.step(tm)?;
            branches += m.trail[before..].iter().filter(|e| e.is_branch()).count();
            if branches >= branch_limit || r != StepResult::Continue {
                return Ok(m.trail);
            }
        }
        Err(Error::OutOfFuel {
            input: input.to_vec(),
        })
    }

    fn input_len(&self) -> u32 {
        self.sym_len
    }

    fn policy(&self) -> AddressPolicyKind {
        self.policy
    }
}

/// Builder for [`Session`] and [`ParallelSession`]; obtained via
/// [`Session::builder`] (spec + binary), [`Session::executor_builder`]
/// (custom engine instance, no spec), or [`Session::factory_builder`]
/// (replicable custom engine, usable by worker threads).
///
/// Sequential and parallel sessions grow from the same builder: the shared
/// knobs (`binary`, `limit`, `fuel`, `input_len`) apply to both, while the
/// engine *instances* (`strategy`, `backend`, `observer`, `executor`) are
/// sequential-only — worker threads cannot share them — and have `Send`
/// *factory* counterparts (`shard_strategy`, `backend_factory`,
/// `observer_factory`, `executor_factory`) consumed by
/// [`SessionBuilder::build_parallel`].
pub struct SessionBuilder {
    spec: Option<Spec>,
    elf: Option<ElfFile>,
    executor: Option<Box<dyn PathExecutor>>,
    strategy: Box<dyn PathStrategy>,
    strategy_set: bool,
    backend: Box<dyn SolverBackend>,
    backend_set: bool,
    observer: Box<dyn Observer>,
    observer_set: bool,
    limit: Option<u64>,
    fuel: u64,
    input_len: Option<u32>,
    address_policy: Option<AddressPolicyKind>,
    workers: Option<usize>,
    executor_factory: Option<ExecutorFactory>,
    backend_factory: Option<BackendFactory>,
    observer_factory: Option<ObserverFactory>,
    shard_strategy: Option<ShardStrategyFactory>,
    warm_start: bool,
    warm_capacity: Option<usize>,
    static_analysis: bool,
    sa_shadow: bool,
    metrics: Option<Arc<MetricsRegistry>>,
    trace: Option<Arc<dyn TraceSink>>,
    progress: Option<Duration>,
    progress_coverage: Option<Arc<CoverageMap>>,
    checkpoint: Option<(std::path::PathBuf, u64)>,
    resume: Option<std::path::PathBuf>,
}

impl std::fmt::Debug for SessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionBuilder")
            .field("strategy", &self.strategy.name())
            .field("backend", &self.backend.name())
            .field("limit", &self.limit)
            .field("fuel", &self.fuel)
            .field("input_len", &self.input_len)
            .field("workers", &self.workers)
            .finish_non_exhaustive()
    }
}

impl SessionBuilder {
    /// The binary to explore (must define a `__sym_input` symbol).
    pub fn binary(mut self, elf: &ElfFile) -> Self {
        self.elf = Some(elf.clone());
        self
    }

    /// Plugs in a custom [`PathExecutor`] instead of the default
    /// [`SpecExecutor`] over the builder's spec; the benchmark personas
    /// and the IR-lifter baseline enter the session this way.
    pub fn executor(mut self, executor: impl PathExecutor + 'static) -> Self {
        self.executor = Some(Box::new(executor));
        self
    }

    /// Path-selection strategy (default: [`Dfs`], the paper's policy).
    /// Sequential-only; parallel sessions take [`SessionBuilder::shard_strategy`].
    pub fn strategy(mut self, strategy: impl PathStrategy + 'static) -> Self {
        self.strategy = Box::new(strategy);
        self.strategy_set = true;
        self
    }

    /// Solver backend (default: the incremental [`BitblastBackend`]).
    /// Sequential-only; parallel sessions take [`SessionBuilder::backend_factory`].
    pub fn backend(mut self, backend: impl SolverBackend + 'static) -> Self {
        self.backend = Box::new(backend);
        self.backend_set = true;
        self
    }

    /// Observer receiving step/branch/path/query callbacks (default: none).
    /// Sequential-only; parallel sessions take [`SessionBuilder::observer_factory`].
    pub fn observer(mut self, observer: impl Observer + 'static) -> Self {
        self.observer = Box::new(observer);
        self.observer_set = true;
        self
    }

    /// Number of worker threads for [`SessionBuilder::build_parallel`]
    /// (default: the machine's available parallelism, capped at 8). Must be
    /// nonzero. Setting it makes the builder parallel-only: `build()` will
    /// refuse, pointing here.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = Some(workers);
        self
    }

    /// Factory producing one [`PathExecutor`] per worker thread (and, when
    /// no explicit executor/binary was given, the sequential executor too).
    /// The factory must be `Send + Sync`; the executors it returns stay on
    /// the thread that created them.
    pub fn executor_factory(
        mut self,
        factory: impl Fn() -> Result<Box<dyn PathExecutor>, Error> + Send + Sync + 'static,
    ) -> Self {
        self.executor_factory = Some(std::sync::Arc::new(factory));
        self
    }

    /// Factory producing the solver backend for each replayed prescription
    /// in a parallel session (default: the incremental
    /// [`BitblastBackend`]). Called once per feasibility query batch so
    /// every replay solves in a context that is a pure function of its
    /// prescription — the root of cross-run determinism.
    pub fn backend_factory(
        mut self,
        factory: impl Fn() -> Box<dyn SolverBackend> + Send + Sync + 'static,
    ) -> Self {
        self.backend_factory = Some(std::sync::Arc::new(factory));
        self
    }

    /// Factory producing one [`Observer`] per worker thread, receiving the
    /// worker index. Worker observers see their shard's events live
    /// (`on_step`/`on_branch` during materialized-path execution, plus
    /// `on_query`/`on_path`); the deterministic merged stream is the record
    /// list of [`ParallelSession::records`].
    pub fn observer_factory(
        mut self,
        factory: impl Fn(usize) -> Box<dyn Observer> + Send + Sync + 'static,
    ) -> Self {
        self.observer_factory = Some(std::sync::Arc::new(factory));
        self
    }

    /// Factory producing each worker's shard-local frontier policy,
    /// receiving the worker index (default: depth-first). Affects
    /// *scheduling only*: the merged results are canonical for any policy.
    pub fn shard_strategy(
        mut self,
        factory: impl Fn(usize) -> Box<dyn PrescriptionStrategy> + Send + Sync + 'static,
    ) -> Self {
        self.shard_strategy = Some(std::sync::Arc::new(factory));
        self
    }

    /// Enables the deterministic prefix-keyed solver warm start for
    /// parallel sessions (default: off). Each worker keeps a bounded
    /// cache keyed by parent concrete input: the parent-prefix trail is
    /// executed once and reused, and the prefix's bit-blast is held open
    /// in a reusable solver context with each flip solved in a disposable
    /// frame on top. The cache affects **wall time only, never models** —
    /// merged records stay byte-identical to a cache-off run on every
    /// worker count, schedule, and hit pattern (see [`crate::warm`]).
    ///
    /// Parallel-only (the sequential engine already has true cross-query
    /// incrementality); incompatible with a custom
    /// [`SessionBuilder::backend_factory`], which the warm path replaces.
    pub fn warm_start(mut self, enabled: bool) -> Self {
        self.warm_start = enabled;
        self
    }

    /// Bounds the warm-start cache to `contexts` resident parent contexts
    /// per worker (default: [`crate::warm::DEFAULT_WARM_CAPACITY`]) and
    /// implies [`SessionBuilder::warm_start`]`(true)` — setting a cache
    /// size for a disabled cache would otherwise be a silent no-op.
    /// Eviction is least-recently-used; like every other cache knob it
    /// changes wall time only, never results. Must be nonzero.
    pub fn warm_capacity(mut self, contexts: usize) -> Self {
        self.warm_start = true;
        self.warm_capacity = Some(contexts);
        self
    }

    /// Enables the word-level static-analysis gate (default: **on**).
    /// Before a flip query is bit-blasted, a known-bits + interval +
    /// order-closure pass over the path condition tries to decide it
    /// outright; decided queries skip the SAT solver entirely (see
    /// [`crate::StaticGate`]). Like the warm-start cache, the gate affects
    /// wall time only, never results: merged records stay byte-identical
    /// to an analysis-off run — residual queries are blasted from the
    /// original terms, and eliminated verdicts are exact. Per-query
    /// accounting flows through [`crate::Observer::on_static_analysis`].
    pub fn static_analysis(mut self, enabled: bool) -> Self {
        self.static_analysis = enabled;
        self
    }

    /// Cross-checks **every** static-analysis verdict against the full
    /// SAT query, panicking with an SMT-LIB dump of the query on any
    /// disagreement (default: off; also enabled by the `BINSYM_SA_SHADOW`
    /// environment variable). A soundness tripwire for CI — it re-adds
    /// the solver work the gate saves, so leave it off when benchmarking.
    /// Implies [`SessionBuilder::static_analysis`]`(true)`.
    pub fn static_analysis_shadow_check(mut self, enabled: bool) -> Self {
        self.sa_shadow = enabled;
        if enabled {
            self.static_analysis = true;
        }
        self
    }

    /// Installs a shared [`MetricsRegistry`]: the engine times every
    /// [`Phase`] (execute/replay, bit-blast, solve, gate, warm promote/
    /// solve, merge) into the registry's lock-free per-worker shards, plus
    /// a per-query latency histogram. Keep an `Arc` clone and read
    /// [`MetricsRegistry::report`] after the run.
    ///
    /// Like the warm cache and the static gate, metrics change **wall time
    /// only, never results** — both determinism suites pin metrics-on runs
    /// byte-identical to metrics-off runs. With no registry and no trace
    /// sink installed the engine measures no clocks at all.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Installs a [`TraceSink`] receiving begin/end span events for every
    /// timed [`Phase`], one track per worker (track `i` = worker `i`; a
    /// parallel merge lands on track `workers`). Use
    /// [`crate::ChromeTraceSink`] to open the hunt in `ui.perfetto.dev`,
    /// or [`crate::JsonlTraceSink`] for streaming consumers. Carries the
    /// same wall-time-only contract as [`SessionBuilder::metrics`].
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.trace = Some(sink);
        self
    }

    /// Enables a periodic stderr progress report (paths/sec, queries/sec,
    /// and — in parallel sessions — frontier depth) every `interval`.
    /// Counters come from the metrics registry; if none was installed, a
    /// private one is created. Must be nonzero.
    pub fn progress(mut self, interval: Duration) -> Self {
        self.progress = Some(interval);
        self
    }

    /// Adds covered-PC counts from `map` to the progress report (pair with
    /// the same shared map fed by [`crate::CoverageObserver`]s).
    pub fn progress_coverage(mut self, map: Arc<CoverageMap>) -> Self {
        self.progress_coverage = Some(map);
        self
    }

    /// Writes an atomic checkpoint of the parallel exploration to `path`
    /// every `every_n` newly merged paths (and once more on drain). A
    /// checkpoint captures the committed records, every shard frontier
    /// (including policy-private RNG/coverage state), in-flight work, and
    /// the truncation watermark in the versioned [`crate::persist`] wire
    /// format; [`SessionBuilder::resume`] turns it back into a run whose
    /// merged records are **byte-identical** to the uninterrupted run's.
    /// Files are written via a temp sibling + rename, so a kill at any
    /// instant leaves a complete checkpoint on disk. `every_n` must be
    /// nonzero. Parallel-only. Progress flows through
    /// [`crate::Observer::on_checkpoint`].
    pub fn checkpoint(mut self, path: impl Into<std::path::PathBuf>, every_n: u64) -> Self {
        self.checkpoint = Some((path.into(), every_n));
        self
    }

    /// Seeds the parallel exploration from a checkpoint written by
    /// [`SessionBuilder::checkpoint`] instead of from the root
    /// prescription. The session's `input_len`, `fuel`, and `limit` must
    /// match the checkpoint's (typed [`Error::Persist`] otherwise — as for
    /// any unreadable, truncated, or wrong-version file); worker count and
    /// shard policy may differ, since they only shape scheduling. The
    /// resumed run's merged records are byte-identical to the
    /// uninterrupted run's. Parallel-only.
    pub fn resume(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.resume = Some(path.into());
        self
    }

    /// Upper bound on explored paths. Must be nonzero — for unbounded
    /// exploration simply don't set a limit.
    ///
    /// A sequential session stops after the first `max_paths` paths in
    /// *strategy order*; a parallel session returns the canonical
    /// `max_paths`-lowest-[`PathId`] prefix of the full exploration,
    /// independent of scheduling (see [`crate::parallel`]).
    pub fn limit(mut self, max_paths: u64) -> Self {
        self.limit = Some(max_paths);
        self
    }

    /// Instruction budget per path (default: 10 million).
    pub fn fuel(mut self, fuel_per_path: u64) -> Self {
        self.fuel = fuel_per_path;
        self
    }

    /// Overrides the symbolic-input length (default: the ELF symbol's
    /// size, or its full data extent).
    pub fn input_len(mut self, len: u32) -> Self {
        self.input_len = Some(len);
        self
    }

    /// Sets the address-concretization policy for symbolic memory accesses
    /// (default: [`AddressPolicyKind::ConcretizeEq`], the paper's §III-B
    /// behavior — see [`crate::memory`] for the alternatives). Applies to
    /// the builder's own [`SpecExecutor`]; a custom executor (or executor
    /// factory) must be configured with the same policy itself — the
    /// builder cross-checks and refuses on a mismatch.
    pub fn address_policy(mut self, policy: AddressPolicyKind) -> Self {
        self.address_policy = Some(policy);
        self
    }

    fn validate_common(&self) -> Result<(), Error> {
        if self.limit == Some(0) {
            return Err(Error::InvalidConfig {
                what: "path limit must be nonzero (omit `limit` for unbounded exploration)",
            });
        }
        if self.fuel == 0 {
            return Err(Error::InvalidConfig {
                what: "per-path fuel must be nonzero",
            });
        }
        if self.warm_capacity == Some(0) {
            return Err(Error::InvalidConfig {
                what: "warm-start capacity must be nonzero",
            });
        }
        if self.progress == Some(Duration::ZERO) {
            return Err(Error::InvalidConfig {
                what: "progress interval must be nonzero",
            });
        }
        if matches!(self.checkpoint, Some((_, 0))) {
            return Err(Error::InvalidConfig {
                what: "checkpoint interval must be nonzero paths",
            });
        }
        Ok(())
    }

    /// The metrics registry the session will write to: the explicit one,
    /// or a private registry when only the progress reporter needs
    /// counters (no registry at all otherwise — the disabled path must
    /// measure nothing).
    fn effective_metrics(&self, workers: usize) -> Option<Arc<MetricsRegistry>> {
        match (&self.metrics, self.progress) {
            (Some(registry), _) => Some(Arc::clone(registry)),
            (None, Some(_)) => Some(Arc::new(MetricsRegistry::new(workers))),
            (None, None) => None,
        }
    }

    /// Assembles the sequential session.
    ///
    /// # Errors
    /// [`Error::MissingBinary`] when none of [`SessionBuilder::binary`],
    /// [`SessionBuilder::executor`], or
    /// [`SessionBuilder::executor_factory`] was called,
    /// [`Error::InvalidConfig`] for a zero path limit, zero fuel, or a
    /// builder made parallel-only via [`SessionBuilder::workers`], and
    /// [`Error::NoSymbolicInput`] when the binary lacks the symbol.
    pub fn build(self) -> Result<Session, Error> {
        self.validate_common()?;
        if self.workers.is_some() {
            return Err(Error::InvalidConfig {
                what: "`workers` configures a parallel session: call `build_parallel()`",
            });
        }
        if self.checkpoint.is_some() || self.resume.is_some() {
            return Err(Error::InvalidConfig {
                what: "`checkpoint`/`resume` persist the sharded frontier of a parallel \
                       session: call `build_parallel()`",
            });
        }
        if self.warm_start {
            return Err(Error::InvalidConfig {
                what: "`warm_start` serves the parallel engine (the sequential session is \
                       already incremental): call `build_parallel()`",
            });
        }
        let instr = Instruments::new(self.effective_metrics(1), self.trace.clone(), 0);
        let progress = self
            .progress
            .map(|interval| Progress::new(interval, self.progress_coverage.clone()));
        let executor = match (self.executor, self.executor_factory, self.elf) {
            (Some(exec), _, _) => exec,
            (None, Some(factory), _) => factory()?,
            (None, None, Some(elf)) => {
                let spec = self.spec.ok_or(Error::InvalidConfig {
                    what:
                        "exploring a binary needs an ISA spec: start with `Session::builder(spec)`",
                })?;
                // Move the builder's ELF copy into the executor instead of
                // cloning a second time — images can be large, and session
                // construction sits inside benchmarked regions.
                let (sym_addr, sym_len) = find_sym_input(&elf, self.input_len)?;
                Box::new(SpecExecutor {
                    spec,
                    elf,
                    sym_addr,
                    sym_len,
                    policy: self.address_policy.unwrap_or_default(),
                })
            }
            (None, None, None) => return Err(Error::MissingBinary),
        };
        if let Some(kind) = self.address_policy {
            if executor.policy() != kind {
                return Err(Error::InvalidConfig {
                    what: "`address_policy` disagrees with the custom executor's policy: \
                           configure the executor itself (e.g. `with_policy`)",
                });
            }
        }
        let input_len = executor.input_len();
        let policy = executor.policy();
        Ok(Session {
            executor,
            policy,
            tm: TermManager::new(),
            strategy: self.strategy,
            backend: self.backend,
            observer: self.observer,
            gate: StaticGate::new(self.static_analysis, self.sa_shadow),
            fuel: self.fuel,
            max_paths: self.limit,
            next_input: Some((PathId::root(), vec![0u8; input_len as usize])),
            forced_depth: 0,
            done: false,
            summary: Summary::default(),
            instr,
            progress,
        })
    }

    /// Assembles a [`ParallelSession`]: N worker threads, each owning a
    /// complete engine, exploring the same path tree via replayable
    /// [`Prescription`]s pulled from work-stealing shard frontiers.
    ///
    /// The sequential-only engine instances must not have been set — their
    /// factory counterparts replace them, because every worker needs its
    /// own copies.
    ///
    /// # Errors
    /// [`Error::MissingBinary`] when no binary and no executor factory was
    /// given; [`Error::InvalidConfig`] for zero workers/limit/fuel or for
    /// sequential-only components without factories;
    /// [`Error::NoSymbolicInput`] when the binary lacks the symbol.
    pub fn build_parallel(self) -> Result<ParallelSession, Error> {
        self.validate_common()?;
        if self.workers == Some(0) {
            return Err(Error::InvalidConfig {
                what: "worker count must be nonzero",
            });
        }
        if self.executor.is_some() && self.executor_factory.is_none() {
            return Err(Error::InvalidConfig {
                what: "a boxed executor cannot be shared across workers: use `executor_factory`",
            });
        }
        if self.strategy_set {
            return Err(Error::InvalidConfig {
                what: "`strategy` is sequential-only: use `shard_strategy` for parallel sessions",
            });
        }
        if self.backend_set {
            return Err(Error::InvalidConfig {
                what: "`backend` is sequential-only: use `backend_factory` for parallel sessions",
            });
        }
        if self.observer_set {
            return Err(Error::InvalidConfig {
                what: "`observer` is sequential-only: use `observer_factory` for parallel sessions",
            });
        }
        if self.warm_start && self.backend_factory.is_some() {
            return Err(Error::InvalidConfig {
                what: "`warm_start` replaces the per-query backend with cached prefix \
                       contexts: drop `backend_factory` or disable warm start",
            });
        }
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(8)
        });
        let instrumentation = crate::metrics::InstrumentationConfig {
            metrics: self.effective_metrics(workers),
            trace: self.trace.clone(),
            progress: self.progress,
            progress_coverage: self.progress_coverage.clone(),
        };
        let executor_factory: ExecutorFactory = match (self.executor_factory, self.elf) {
            (Some(factory), _) => factory,
            (None, Some(elf)) => {
                let spec = self.spec.ok_or(Error::InvalidConfig {
                    what:
                        "exploring a binary needs an ISA spec: start with `Session::builder(spec)`",
                })?;
                let input_len = self.input_len;
                let policy = self.address_policy.unwrap_or_default();
                std::sync::Arc::new(move || {
                    Ok(Box::new(
                        SpecExecutor::new(spec.clone(), &elf, input_len)?.with_policy(policy),
                    ))
                })
            }
            (None, None) => return Err(Error::MissingBinary),
        };
        // Probe one executor now: fail fast on a broken factory or missing
        // symbol, and learn the input length and address policy for the
        // root prescription.
        let probe = executor_factory()?;
        let input_len = probe.input_len();
        let policy = probe.policy();
        if self.address_policy.is_some_and(|kind| kind != policy) {
            return Err(Error::InvalidConfig {
                what: "`address_policy` disagrees with the executor factory's policy: \
                       configure the factory's executors themselves (e.g. `with_policy`)",
            });
        }
        let backend_factory: BackendFactory = self
            .backend_factory
            .unwrap_or_else(|| std::sync::Arc::new(|| Box::new(BitblastBackend::new())));
        let shard_strategy: ShardStrategyFactory = self
            .shard_strategy
            .unwrap_or_else(|| std::sync::Arc::new(|_| Box::new(Dfs::<Prescription>::new())));
        let warm_capacity = self.warm_start.then(|| {
            self.warm_capacity
                .unwrap_or(crate::warm::DEFAULT_WARM_CAPACITY)
        });
        Ok(ParallelSession::new(
            workers,
            executor_factory,
            backend_factory,
            self.observer_factory,
            shard_strategy,
            self.fuel,
            self.limit,
            input_len,
            warm_capacity,
            StaticGate::new(self.static_analysis, self.sa_shadow),
            instrumentation,
            PersistPlan {
                checkpoint: self.checkpoint,
                resume: self.resume,
            },
            policy,
        ))
    }
}

/// One symbolic exploration of one binary: executor + strategy + backend
/// + observer, with lazily discovered paths.
///
/// See the [module docs](self) for the full picture and an example.
pub struct Session {
    executor: Box<dyn PathExecutor>,
    /// The executor's address policy, recorded into every prescription.
    policy: AddressPolicyKind,
    tm: TermManager,
    strategy: Box<dyn PathStrategy>,
    backend: Box<dyn SolverBackend>,
    observer: Box<dyn Observer>,
    gate: StaticGate,
    fuel: u64,
    max_paths: Option<u64>,
    /// Identity and input of the next path, when already known (the
    /// initial all-zero root input, or a model found eagerly).
    next_input: Option<(PathId, Vec<u8>)>,
    /// Branches below this ordinal are already queued from earlier paths
    /// and must not be re-queued (they are shared prefix).
    forced_depth: usize,
    done: bool,
    summary: Summary,
    /// Phase timers and trace spans (track 0); disabled unless a metrics
    /// registry or trace sink was installed.
    instr: Instruments,
    progress: Option<Progress>,
}

/// State of the opt-in stderr progress reporter. The sequential session
/// ticks it from the exploration loop itself (thread-free, at most one
/// line per interval); a parallel session ticks it from a dedicated
/// reporter thread.
pub(crate) struct Progress {
    interval: Duration,
    coverage: Option<Arc<CoverageMap>>,
    started: Instant,
    last: Instant,
    last_paths: u64,
    last_queries: u64,
}

impl Progress {
    pub(crate) fn new(interval: Duration, coverage: Option<Arc<CoverageMap>>) -> Self {
        Progress {
            interval,
            coverage,
            started: Instant::now(),
            last: Instant::now(),
            last_paths: 0,
            last_queries: 0,
        }
    }

    /// Emit one report line if `interval` has elapsed since the last.
    pub(crate) fn tick(
        &mut self,
        registry: Option<&Arc<MetricsRegistry>>,
        frontier_depth: Option<usize>,
    ) {
        use std::fmt::Write as _;

        let now = Instant::now();
        if now.duration_since(self.last) < self.interval {
            return;
        }
        let dt = now.duration_since(self.last).as_secs_f64();
        let paths = registry.map_or(0, |r| r.total_paths());
        let queries = registry.map_or(0, |r| r.total_queries());
        let mut line = format!(
            "[binsym] t={:.1}s paths={} ({:.1}/s) queries={} ({:.1}/s)",
            now.duration_since(self.started).as_secs_f64(),
            paths,
            (paths - self.last_paths) as f64 / dt,
            queries,
            (queries - self.last_queries) as f64 / dt,
        );
        if let Some(depth) = frontier_depth {
            let _ = write!(line, " frontier={depth}");
        }
        if let Some(map) = &self.coverage {
            let _ = write!(line, " covered={}", map.covered_count());
        }
        eprintln!("{line}");
        self.last = now;
        self.last_paths = paths;
        self.last_queries = queries;
    }
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("strategy", &self.strategy.name())
            .field("backend", &self.backend.name())
            .field("paths", &self.summary.paths)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl Session {
    fn empty_builder() -> SessionBuilder {
        SessionBuilder {
            spec: None,
            elf: None,
            executor: None,
            strategy: Box::new(Dfs::<Candidate>::new()),
            strategy_set: false,
            backend: Box::new(BitblastBackend::new()),
            backend_set: false,
            observer: Box::new(NullObserver),
            observer_set: false,
            limit: None,
            fuel: 10_000_000,
            input_len: None,
            address_policy: None,
            workers: None,
            executor_factory: None,
            backend_factory: None,
            observer_factory: None,
            shard_strategy: None,
            warm_start: false,
            warm_capacity: None,
            static_analysis: true,
            sa_shadow: false,
            metrics: None,
            trace: None,
            progress: None,
            progress_coverage: None,
            checkpoint: None,
            resume: None,
        }
    }

    /// Starts building a session for the given ISA specification.
    pub fn builder(spec: Spec) -> SessionBuilder {
        SessionBuilder {
            spec: Some(spec),
            ..Session::empty_builder()
        }
    }

    /// Starts building a session around a custom [`PathExecutor`] — no ISA
    /// specification is needed (the executor brings its own translation
    /// layer). Equivalent to `Session::builder(spec).executor(...)` minus
    /// the throwaway spec. Sequential-only (the boxed executor cannot be
    /// replicated onto worker threads); parallel custom engines start from
    /// [`Session::factory_builder`].
    pub fn executor_builder(executor: impl PathExecutor + 'static) -> SessionBuilder {
        SessionBuilder {
            executor: Some(Box::new(executor)),
            ..Session::empty_builder()
        }
    }

    /// Starts building a session around a *replicable* custom engine: the
    /// factory is invoked once per worker thread by
    /// [`SessionBuilder::build_parallel`] (and once by
    /// [`SessionBuilder::build`] for a sequential session), so one builder
    /// serves both modes. Shorthand for
    /// `Session::builder(spec).executor_factory(...)` minus the throwaway
    /// spec.
    pub fn factory_builder(
        factory: impl Fn() -> Result<Box<dyn PathExecutor>, Error> + Send + Sync + 'static,
    ) -> SessionBuilder {
        Session::empty_builder().executor_factory(factory)
    }

    /// Length of the symbolic input region in bytes.
    pub fn input_len(&self) -> u32 {
        self.executor.input_len()
    }

    /// Access to the term manager (e.g. for printing queries).
    pub fn term_manager(&self) -> &TermManager {
        &self.tm
    }

    /// Name of the active path-selection strategy.
    pub fn strategy_name(&self) -> &'static str {
        self.strategy.name()
    }

    /// Name of the active solver backend.
    pub fn backend_name(&self) -> &'static str {
        self.backend.name()
    }

    /// True when the frontier is exhausted (or the path limit was hit) and
    /// no further path will be yielded.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Totals accumulated so far (complete once exploration is done).
    /// [`Summary::solver_checks`] reflects the backend's live counter.
    pub fn summary(&self) -> Summary {
        let mut s = self.summary.clone();
        s.solver_checks = self.backend.num_checks();
        s
    }

    /// Executes a single path with the given concrete input, without
    /// touching the exploration frontier.
    ///
    /// This is a replay facility outside the exploration loop: the
    /// session's observer does **not** see the run (its per-path state and
    /// counters stay consistent with the explored paths only).
    ///
    /// # Errors
    /// Returns [`Error`] on execution errors or fuel exhaustion.
    pub fn execute_path(&mut self, input: &[u8]) -> Result<PathOutcome, Error> {
        self.executor
            .execute_path(&mut self.tm, input, self.fuel, &mut NullObserver)
    }

    /// The streaming path iterator: each `next()` executes exactly one
    /// path and yields its [`PathOutcome`]. The feasibility search for
    /// the *following* input runs lazily on the subsequent call, so
    /// consuming a prefix of the paths does no wasted solver work.
    pub fn paths(&mut self) -> Paths<'_> {
        Paths { session: self }
    }

    /// Runs exploration to completion (or to the path limit), returning
    /// the [`Summary`]. Thin wrapper draining [`Session::paths`]; totals
    /// accumulate across calls, so interleaving with a partially consumed
    /// iterator is fine.
    ///
    /// # Errors
    /// Returns [`Error`] if any path fails to execute.
    pub fn run_all(&mut self) -> Result<Summary, Error> {
        while let Some(r) = self.next_path() {
            r?;
        }
        Ok(self.summary())
    }

    /// Core of the lazy loop: executes one path and queues its flip
    /// candidates; solves for the next input only when none is staged.
    fn next_path(&mut self) -> Option<Result<PathOutcome, Error>> {
        if self.done {
            return None;
        }
        let (path_id, input) = match self.next_input.take() {
            Some(i) => i,
            None => match self.solve_next() {
                Some(i) => i,
                None => {
                    self.done = true;
                    return None;
                }
            },
        };
        let started = self.instr.begin(Phase::Execute);
        let outcome =
            match self
                .executor
                .execute_path(&mut self.tm, &input, self.fuel, &mut *self.observer)
            {
                Ok(o) => o,
                Err(e) => {
                    self.instr
                        .finish(started, Phase::Execute, &mut *self.observer);
                    self.done = true;
                    return Some(Err(e));
                }
            };
        self.instr
            .finish(started, Phase::Execute, &mut *self.observer);
        self.instr.note_path();

        self.summary.paths += 1;
        self.summary.total_steps += outcome.steps;
        self.summary.max_trail_len = self.summary.max_trail_len.max(outcome.trail.len());
        match outcome.exit {
            StepResult::Exited(0) => {}
            StepResult::Exited(code) => self.summary.error_paths.push(ErrorPath {
                exit_code: Some(code),
                input: input.clone(),
            }),
            StepResult::Break => self.summary.error_paths.push(ErrorPath {
                exit_code: None,
                input: input.clone(),
            }),
            StepResult::Continue => unreachable!("execute_path loops on Continue"),
        }
        self.observer.on_path(&input, &outcome);
        if let Some(progress) = &mut self.progress {
            progress.tick(self.instr.registry(), None);
        }

        if self
            .max_paths
            .is_some_and(|limit| self.summary.paths >= limit)
        {
            self.summary.truncated = true;
            self.done = true;
            return Some(Ok(outcome));
        }

        // Queue flip candidates for the new suffix of this path's trail.
        let mut branch_ord = 0usize;
        for (i, entry) in outcome.trail.iter().enumerate() {
            if let TrailEntry::Branch { cond, taken, pc } = *entry {
                if branch_ord >= self.forced_depth {
                    self.strategy.push(Candidate {
                        prefix: outcome.trail[..i].to_vec(),
                        cond,
                        taken,
                        branch_ord,
                        prescription: Prescription {
                            id: path_id.child(branch_ord),
                            input: outcome.input.clone(),
                            flip: Some(Flip {
                                ord: branch_ord,
                                taken,
                                pc,
                            }),
                            policy: self.policy,
                        },
                    });
                }
                branch_ord += 1;
            }
        }
        Some(Ok(outcome))
    }

    /// Pops frontier candidates until a feasible flip is found, returning
    /// the new path's identity and the model's input bytes (and updating
    /// `forced_depth`), or `None` when the frontier is exhausted.
    fn solve_next(&mut self) -> Option<(PathId, Vec<u8>)> {
        while let Some(cand) = self.strategy.pop() {
            // Terms are interned in the same order whether or not the gate
            // screens the query, so analysis-on and analysis-off runs see
            // identical term handles (and hence identical CNF and models).
            let prefix: Vec<_> = cand
                .prefix
                .iter()
                .map(|e| e.path_term(&mut self.tm))
                .collect();
            let flipped = if cand.taken {
                self.tm.not(cand.cond)
            } else {
                cand.cond
            };
            let gate_started = self.instr.begin(Phase::Gate);
            let screened =
                self.gate
                    .screen(&mut self.tm, &prefix, flipped, &cand.prescription.input);
            self.instr
                .finish(gate_started, Phase::Gate, &mut *self.observer);
            if let Some(report) = screened {
                self.observer.on_static_analysis(&report.stats);
                if let Some((r, bytes)) = report.verdict {
                    // Eliminated: no backend call, no `on_query`.
                    match r {
                        SatResult::Sat => {
                            let bytes = bytes.expect("sat verdict carries witness bytes");
                            self.forced_depth = cand.branch_ord + 1;
                            return Some((cand.prescription.id, bytes));
                        }
                        SatResult::Unsat => continue,
                    }
                }
            }
            let blast_started = self.instr.begin(Phase::BitBlast);
            self.backend.push();
            for &t in &prefix {
                self.backend.assert_term(&mut self.tm, t);
            }
            self.backend.assert_term(&mut self.tm, flipped);
            self.instr
                .finish(blast_started, Phase::BitBlast, &mut *self.observer);
            let solve_started = self.instr.begin(Phase::Solve);
            let r = self.backend.check_sat(&mut self.tm);
            let solve_nanos = self
                .instr
                .finish(solve_started, Phase::Solve, &mut *self.observer);
            if solve_started.is_some() {
                self.instr.record_query(solve_nanos);
            }
            self.observer.on_query(r);
            if r == SatResult::Sat {
                let model = self.backend.model(&self.tm).expect("sat has model");
                let bytes = (0..self.executor.input_len())
                    .map(|i| model.value(&format!("in{i}")).unwrap_or(0) as u8)
                    .collect();
                self.backend.pop();
                self.forced_depth = cand.branch_ord + 1;
                return Some((cand.prescription.id, bytes));
            }
            self.backend.pop();
        }
        None
    }
}

/// Iterator over lazily explored paths; see [`Session::paths`].
#[derive(Debug)]
pub struct Paths<'a> {
    session: &'a mut Session,
}

impl Iterator for Paths<'_> {
    type Item = Result<PathOutcome, Error>;

    fn next(&mut self) -> Option<Self::Item> {
        self.session.next_path()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::SmtLibDump;
    use crate::observe::CountingObserver;
    use crate::strategy::{Bfs, RandomRestart};
    use binsym_asm::Assembler;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn session_for(src: &str) -> Session {
        let elf = Assembler::new().assemble(src).expect("assembles");
        Session::builder(Spec::rv32im())
            .binary(&elf)
            .build()
            .expect("has sym input")
    }

    fn explore(src: &str) -> Summary {
        session_for(src).run_all().expect("explores")
    }

    const SINGLE_COMPARE: &str = r#"
        .data
__sym_input: .word 0
        .text
_start:
    la a0, __sym_input
    lw a1, 0(a0)
    li a2, 42
    beq a1, a2, hit
    li a0, 0
    li a7, 93
    ecall
hit:
    li a0, 1
    li a7, 93
    ecall
"#;

    const THREE_COMPARES: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    lbu a1, 0(a0)
    bltu a1, a2, c1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
c3:
    li a0, 0
    li a7, 93
    ecall
"#;

    #[test]
    fn two_paths_for_single_compare() {
        let s = explore(SINGLE_COMPARE);
        assert_eq!(s.paths, 2);
        assert_eq!(s.error_paths.len(), 1);
        // The witness input must be 42 (little-endian).
        assert_eq!(s.error_paths[0].input, vec![42, 0, 0, 0]);
    }

    #[test]
    fn chained_compares_enumerate_all_paths() {
        // Three independent byte comparisons: 8 paths.
        let s = explore(THREE_COMPARES);
        assert_eq!(s.paths, 8);
        assert!(s.error_paths.is_empty());
    }

    #[test]
    fn divu_fig2_both_outcomes_found() {
        // The paper's running example: z = x / y; if (x < z) fail.
        // With symbolic x, y the fail branch is reachable only via y == 0.
        let s = explore(
            r#"
        .data
__sym_input: .word 0, 0
        .text
_start:
    la a5, __sym_input
    lw a0, 0(a5)        # x
    lw a1, 4(a5)        # y
    divu a2, a0, a1     # z = x /u y
    bltu a0, a2, fail   # if (x < z) goto fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"#,
        );
        // Paths: y==0 with x<0xffffffff (fail), y==0 with x==0xffffffff
        // (no fail), y!=0 (no fail) — DIVU itself forks on y == 0.
        assert!(s.paths >= 3, "expected >= 3 paths, got {}", s.paths);
        assert_eq!(s.error_paths.len(), 1, "exactly one failing path");
        let witness = &s.error_paths[0].input;
        let y = u32::from_le_bytes([witness[4], witness[5], witness[6], witness[7]]);
        assert_eq!(y, 0, "the failure witness must have a zero divisor");
    }

    #[test]
    fn loop_over_symbolic_bound_terminates() {
        // Loop count bounded by 2-bit input: 4 paths (0..=3 iterations).
        let s = explore(
            r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    andi a1, a1, 3
    li a2, 0
loop:
    beq a2, a1, done
    addi a2, a2, 1
    j loop
done:
    li a0, 0
    li a7, 93
    ecall
"#,
        );
        assert_eq!(s.paths, 4);
    }

    #[test]
    fn table_lookup_with_concretization() {
        // A symbolic index into a table is concretized; exploration still
        // covers both sides of the following branch.
        let s = explore(
            r#"
        .data
__sym_input: .byte 0
table:       .byte 1, 2, 3, 4
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    andi a1, a1, 3
    la a2, table
    add a2, a2, a1
    lbu a3, 0(a2)
    li a4, 3
    beq a3, a4, found
    li a0, 0
    li a7, 93
    ecall
found:
    li a0, 0
    li a7, 93
    ecall
"#,
        );
        // At least 2 paths (branch directions); concretization may pin the
        // table slot, so the exact count depends on the address constraint.
        assert!(s.paths >= 2);
        assert!(s.max_trail_len >= 2);
    }

    #[test]
    fn error_break_paths_reported() {
        let s = explore(
            r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a2, 7
    bne a1, a2, ok
    ebreak
ok:
    li a0, 0
    li a7, 93
    ecall
"#,
        );
        assert_eq!(s.paths, 2);
        assert_eq!(s.error_paths.len(), 1);
        assert_eq!(s.error_paths[0].exit_code, None);
        assert_eq!(s.error_paths[0].input, vec![7]);
    }

    #[test]
    fn limit_truncates() {
        let elf = Assembler::new()
            .assemble(
                r#"
        .data
__sym_input: .byte 0, 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    lbu a1, 0(a0)
    bltu a1, a2, c1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
c3: lbu a1, 3(a0)
    bltu a1, a2, c4
c4:
    li a0, 0
    li a7, 93
    ecall
"#,
            )
            .unwrap();
        let mut session = Session::builder(Spec::rv32im())
            .binary(&elf)
            .limit(5)
            .build()
            .unwrap();
        let s = session.run_all().unwrap();
        assert_eq!(s.paths, 5);
        assert!(s.truncated);
        assert!(session.is_done());
    }

    #[test]
    fn fresh_solver_backend_is_path_equivalent() {
        let explore_with = |backend: BitblastBackend| {
            let elf = Assembler::new().assemble(THREE_COMPARES).unwrap();
            Session::builder(Spec::rv32im())
                .binary(&elf)
                .backend(backend)
                .build()
                .unwrap()
                .run_all()
                .unwrap()
        };
        let si = explore_with(BitblastBackend::new());
        let sf = explore_with(BitblastBackend::fresh_per_query());
        assert_eq!(si.paths, sf.paths);
        assert_eq!(si.error_paths, sf.error_paths);
        assert_eq!(si.solver_checks, sf.solver_checks);
        assert_eq!(si.paths, 8);
    }

    #[test]
    fn all_strategies_enumerate_the_same_path_set() {
        let run = |strategy: Box<dyn PathStrategy>| {
            let elf = Assembler::new().assemble(THREE_COMPARES).unwrap();
            Session::builder(Spec::rv32im())
                .binary(&elf)
                .strategy(strategy)
                .build()
                .unwrap()
                .run_all()
                .unwrap()
        };
        let dfs = run(Box::<Dfs>::default());
        let bfs = run(Box::<Bfs>::default());
        let rnd = run(Box::<RandomRestart>::default());
        assert_eq!(dfs.paths, 8);
        assert_eq!(bfs.paths, 8, "bfs misses paths");
        assert_eq!(rnd.paths, 8, "random-restart misses paths");
    }

    #[test]
    fn paths_iterator_is_lazy_and_resumable() {
        let mut session = session_for(THREE_COMPARES);
        let first: Vec<PathOutcome> = session.paths().take(3).map(|r| r.unwrap()).collect();
        assert_eq!(first.len(), 3);
        assert_eq!(session.summary().paths, 3);
        assert!(!session.is_done());
        // Draining the rest through run_all completes the same exploration.
        let s = session.run_all().unwrap();
        assert_eq!(s.paths, 8);
    }

    #[test]
    fn streamed_outcomes_carry_inputs_and_match_summary() {
        let mut session = session_for(SINGLE_COMPARE);
        let outcomes: Vec<PathOutcome> = session.paths().map(|r| r.unwrap()).collect();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(
            outcomes[0].input,
            vec![0, 0, 0, 0],
            "first path is all-zero input"
        );
        let errors: Vec<&PathOutcome> = outcomes.iter().filter(|o| o.is_error()).collect();
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].input, vec![42, 0, 0, 0]);
        let s = session.summary();
        assert_eq!(s.paths, 2);
        assert_eq!(s.error_paths[0].input, errors[0].input);
    }

    #[test]
    fn execute_path_exposes_outcome() {
        let mut session = session_for(
            r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a7, 93
    mv a0, a1
    ecall
"#,
        );
        let out = session.execute_path(&[9]).unwrap();
        assert_eq!(out.exit, StepResult::Exited(9));
        assert!(out.steps > 0);
    }

    #[test]
    fn builder_rejects_missing_binary_and_zero_limits() {
        let err = Session::builder(Spec::rv32im()).build().unwrap_err();
        assert!(matches!(err, Error::MissingBinary));

        let elf = Assembler::new().assemble(SINGLE_COMPARE).unwrap();
        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .limit(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));

        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .fuel(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));

        let err = Session::builder(Spec::rv32im())
            .binary(&elf)
            .progress(std::time::Duration::ZERO)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::InvalidConfig { .. }));
    }

    #[test]
    fn progress_reporter_and_metrics_leave_results_unchanged() {
        let plain = explore(SINGLE_COMPARE);
        let elf = Assembler::new().assemble(SINGLE_COMPARE).unwrap();
        let registry = std::sync::Arc::new(crate::metrics::MetricsRegistry::new(1));
        let s = Session::builder(Spec::rv32im())
            .binary(&elf)
            .metrics(std::sync::Arc::clone(&registry))
            .progress(std::time::Duration::from_millis(1))
            .build()
            .unwrap()
            .run_all()
            .unwrap();
        assert_eq!(s.paths, plain.paths);
        assert_eq!(s.solver_checks, plain.solver_checks);
        assert_eq!(s.total_steps, plain.total_steps);
        let report = registry.report();
        assert_eq!(report.paths, s.paths);
        assert_eq!(report.queries, s.solver_checks);
    }

    #[test]
    fn progress_without_metrics_gets_a_private_registry() {
        // `.progress()` alone must not panic or skew results — the builder
        // auto-creates a registry for the reporter to read.
        let plain = explore(SINGLE_COMPARE);
        let elf = Assembler::new().assemble(SINGLE_COMPARE).unwrap();
        let s = Session::builder(Spec::rv32im())
            .binary(&elf)
            .progress(std::time::Duration::from_millis(1))
            .build()
            .unwrap()
            .run_all()
            .unwrap();
        assert_eq!(s.paths, plain.paths);
        assert_eq!(s.solver_checks, plain.solver_checks);
    }

    #[test]
    fn observer_sees_steps_branches_paths_and_queries() {
        let counts = Rc::new(RefCell::new(CountingObserver::new()));
        let elf = Assembler::new().assemble(SINGLE_COMPARE).unwrap();
        let s = Session::builder(Spec::rv32im())
            .binary(&elf)
            .observer(Rc::clone(&counts))
            .build()
            .unwrap()
            .run_all()
            .unwrap();
        let c = *counts.borrow();
        assert_eq!(c.paths, s.paths);
        assert_eq!(c.steps, s.total_steps);
        assert_eq!(c.queries, s.solver_checks);
        assert_eq!(c.branches, 2, "one symbolic branch per path");
        assert_eq!(c.sat_queries, 1, "one feasible flip");
    }

    #[test]
    fn execute_path_bypasses_the_observer() {
        // Replays must not corrupt path-scoped observer state: counters
        // stay consistent with the *explored* paths only.
        let counts = Rc::new(RefCell::new(CountingObserver::new()));
        let elf = Assembler::new().assemble(SINGLE_COMPARE).unwrap();
        let mut session = Session::builder(Spec::rv32im())
            .binary(&elf)
            .observer(Rc::clone(&counts))
            .build()
            .unwrap();
        session.execute_path(&[1, 2, 3, 4]).unwrap();
        assert_eq!(counts.borrow().steps, 0, "replay must not be observed");
        let s = session.run_all().unwrap();
        assert_eq!(counts.borrow().steps, s.total_steps);
        assert_eq!(counts.borrow().paths, s.paths);
    }

    #[test]
    fn smtlib_dump_records_every_query() {
        let backend = SmtLibDump::new();
        let scripts = backend.scripts();
        let elf = Assembler::new().assemble(SINGLE_COMPARE).unwrap();
        let s = Session::builder(Spec::rv32im())
            .binary(&elf)
            .backend(backend)
            .build()
            .unwrap()
            .run_all()
            .unwrap();
        assert_eq!(s.paths, 2);
        assert_eq!(scripts.len() as u64, s.solver_checks);
        for script in scripts.snapshot() {
            assert!(script.starts_with("(set-logic QF_BV)"));
            assert!(script.ends_with("(check-sat)\n"));
        }
    }
}
