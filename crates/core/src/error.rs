//! The unified error type of the BinSym engine.
//!
//! Every fallible operation in the toolchain — assembling a SUT, parsing an
//! ELF image, building a [`crate::Session`], executing a path — reports
//! through [`Error`]. The per-crate error types (`binsym_asm::AsmError`,
//! `binsym_elf::ElfError`, [`crate::ExecError`], `binsym_isa::DecodeError`)
//! still exist for precision at their origin, but all convert into `Error`
//! via `From`, so `?` composes across the whole stack.

use std::fmt;

use crate::machine::ExecError;
use crate::SYM_INPUT_SYMBOL;

/// The unified `binsym` error.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The binary defines no `__sym_input` symbol.
    NoSymbolicInput,
    /// A path failed to execute (decode error, unknown syscall, …).
    Exec(ExecError),
    /// A path exhausted its instruction budget.
    OutOfFuel {
        /// The input that drove the runaway path.
        input: Vec<u8>,
    },
    /// The SUT failed to assemble.
    Asm(binsym_asm::AsmError),
    /// The SUT's ELF image failed to parse.
    Elf(binsym_elf::ElfError),
    /// [`crate::SessionBuilder::build`] was called without a binary or an
    /// explicit executor.
    MissingBinary,
    /// A builder parameter is outside its valid range.
    InvalidConfig {
        /// Which parameter, and why it is invalid.
        what: &'static str,
    },
    /// Replaying a [`crate::Prescription`] on a fresh engine diverged from
    /// the recorded parent path. Execution is deterministic, so this
    /// indicates a non-deterministic [`crate::PathExecutor`] (or an engine
    /// bug) — the prescription model requires that the same input always
    /// reproduces the same trail.
    ReplayDivergence {
        /// What diverged.
        what: &'static str,
    },
    /// A warm-start cache operation failed (a stale or foreign cached
    /// context frame). Always an engine bug; surfaced as a typed error so
    /// a worker thread fails one prescription deterministically instead of
    /// panicking mid-exploration.
    WarmStart {
        /// What went wrong.
        what: &'static str,
    },
    /// A checkpoint/wire operation failed (I/O, bad magic, version
    /// mismatch, truncated or corrupt section). Load failures surface as
    /// session-level errors, never panics.
    Persist(crate::persist::PersistError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::NoSymbolicInput => {
                write!(f, "binary defines no `{SYM_INPUT_SYMBOL}` symbol")
            }
            Error::Exec(e) => write!(f, "{e}"),
            Error::OutOfFuel { .. } => write!(f, "path exceeded its instruction budget"),
            Error::Asm(e) => write!(f, "{e}"),
            Error::Elf(e) => write!(f, "{e}"),
            Error::MissingBinary => {
                write!(
                    f,
                    "session has no binary: call `binary()` or `executor()` before `build()`"
                )
            }
            Error::InvalidConfig { what } => write!(f, "invalid session configuration: {what}"),
            Error::ReplayDivergence { what } => {
                write!(
                    f,
                    "prescription replay diverged from the parent path: {what}"
                )
            }
            Error::WarmStart { what } => {
                write!(f, "warm-start cache failure: {what}")
            }
            Error::Persist(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Exec(e) => Some(e),
            Error::Asm(e) => Some(e),
            Error::Elf(e) => Some(e),
            Error::Persist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ExecError> for Error {
    fn from(e: ExecError) -> Self {
        Error::Exec(e)
    }
}

impl From<binsym_asm::AsmError> for Error {
    fn from(e: binsym_asm::AsmError) -> Self {
        Error::Asm(e)
    }
}

impl From<binsym_elf::ElfError> for Error {
    fn from(e: binsym_elf::ElfError) -> Self {
        Error::Elf(e)
    }
}

impl From<binsym_isa::DecodeError> for Error {
    fn from(e: binsym_isa::DecodeError) -> Self {
        Error::Exec(ExecError::Decode(e))
    }
}

impl From<crate::persist::PersistError> for Error {
    fn from(e: crate::persist::PersistError) -> Self {
        Error::Persist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_compose_with_question_mark() {
        fn assemble(src: &str) -> Result<binsym_elf::ElfFile, Error> {
            Ok(binsym_asm::Assembler::new().assemble(src)?)
        }
        let err = assemble("bogus instruction").unwrap_err();
        assert!(matches!(err, Error::Asm(_)), "got {err:?}");
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn display_is_informative() {
        assert!(Error::NoSymbolicInput.to_string().contains("__sym_input"));
        assert!(Error::MissingBinary.to_string().contains("binary"));
        let e = Error::InvalidConfig {
            what: "path limit must be nonzero",
        };
        assert!(e.to_string().contains("path limit"));
    }
}
