//! Pluggable path-selection strategies for the DSE worklist.
//!
//! The exploration loop maintains a *frontier* of pending branch flips
//! ([`Candidate`]s). Which candidate is discharged next is the search
//! policy — the paper's engine hard-wires depth-first selection (§III-B),
//! but the policy is orthogonal to both the executor and the solver, so
//! [`crate::Session`] takes it as a [`PathStrategy`] trait object:
//!
//! * [`Dfs`] — depth-first (the paper's behaviour, and the default): flip
//!   the deepest unexplored branch of the most recent path first;
//! * [`Bfs`] — breadth-first: flip the oldest, shallowest branch first,
//!   covering short prefixes before deep suffixes;
//! * [`RandomRestart`] — pick a uniformly pseudo-random frontier entry,
//!   restarting exploration from an unrelated part of the program; a
//!   deterministic seed keeps runs reproducible.
//!
//! All strategies enumerate the same complete path set on terminating
//! programs — only the discovery *order* (and thus which paths a truncated
//! exploration sees) differs.

use std::collections::VecDeque;
use std::fmt;

use binsym_smt::Term;

use crate::machine::TrailEntry;

/// A pending branch flip: one node of the exploration frontier.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Trail entries preceding the flipped branch (the path-condition
    /// prefix that must hold for the flip to be meaningful).
    pub prefix: Vec<TrailEntry>,
    /// The branch condition being flipped.
    pub cond: Term,
    /// Direction it was taken originally (the flip asserts the opposite).
    pub taken: bool,
    /// Ordinal of the branch among the path's *branch* entries.
    pub branch_ord: usize,
}

/// A worklist policy deciding which pending branch flip to discharge next.
///
/// Implementations must hand back every pushed candidate exactly once (in
/// any order); the [`crate::Session`] loop handles feasibility checking and
/// deduplication of the shared prefix.
pub trait PathStrategy: fmt::Debug {
    /// Human-readable policy name (for logs and summaries).
    fn name(&self) -> &'static str;

    /// Adds a candidate to the frontier.
    fn push(&mut self, candidate: Candidate);

    /// Removes and returns the next candidate to try, or `None` when the
    /// frontier is exhausted.
    fn pop(&mut self) -> Option<Candidate>;

    /// Number of pending candidates.
    fn frontier_len(&self) -> usize;
}

impl PathStrategy for Box<dyn PathStrategy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn push(&mut self, candidate: Candidate) {
        (**self).push(candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        (**self).pop()
    }

    fn frontier_len(&self) -> usize {
        (**self).frontier_len()
    }
}

/// Depth-first path selection (the paper's §III-B policy, and the default).
#[derive(Debug, Default)]
pub struct Dfs {
    stack: Vec<Candidate>,
}

impl Dfs {
    /// Creates an empty depth-first frontier.
    pub fn new() -> Self {
        Dfs::default()
    }
}

impl PathStrategy for Dfs {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn push(&mut self, candidate: Candidate) {
        self.stack.push(candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        self.stack.pop()
    }

    fn frontier_len(&self) -> usize {
        self.stack.len()
    }
}

/// Breadth-first path selection: oldest (shallowest) branch flips first.
#[derive(Debug, Default)]
pub struct Bfs {
    queue: VecDeque<Candidate>,
}

impl Bfs {
    /// Creates an empty breadth-first frontier.
    pub fn new() -> Self {
        Bfs::default()
    }
}

impl PathStrategy for Bfs {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn push(&mut self, candidate: Candidate) {
        self.queue.push_back(candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        self.queue.pop_front()
    }

    fn frontier_len(&self) -> usize {
        self.queue.len()
    }
}

/// Random path selection with restarts: each flip is drawn uniformly from
/// the whole frontier, so exploration repeatedly "restarts" from unrelated
/// program regions instead of draining one subtree.
///
/// The generator is a deterministic xorshift64*, so a given seed always
/// reproduces the same exploration order.
#[derive(Debug)]
pub struct RandomRestart {
    frontier: Vec<Candidate>,
    state: u64,
}

impl RandomRestart {
    /// Creates the strategy with an explicit seed (any value; 0 is mapped
    /// to a fixed nonzero constant).
    pub fn with_seed(seed: u64) -> Self {
        RandomRestart {
            frontier: Vec::new(),
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Creates the strategy with the default seed.
    pub fn new() -> Self {
        RandomRestart::with_seed(0x5eed_cafe_f00d_beef)
    }

    // Intentional fork of `binsym_testutil::Rng`'s xorshift64* step: the
    // product crate must not depend on a test-support crate, and the
    // strategy's exploration order is a stable, documented behaviour that
    // should not silently shift with test-generator tweaks.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

impl Default for RandomRestart {
    fn default() -> Self {
        RandomRestart::new()
    }
}

impl PathStrategy for RandomRestart {
    fn name(&self) -> &'static str {
        "random-restart"
    }

    fn push(&mut self, candidate: Candidate) {
        self.frontier.push(candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        if self.frontier.is_empty() {
            return None;
        }
        let i = (self.next_u64() as usize) % self.frontier.len();
        Some(self.frontier.swap_remove(i))
    }

    fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binsym_smt::TermManager;

    fn candidate(ord: usize) -> Candidate {
        let mut tm = TermManager::new();
        let v = tm.var("c", 1);
        let one = tm.bv_const(1, 1);
        Candidate {
            prefix: Vec::new(),
            cond: tm.eq(v, one),
            taken: true,
            branch_ord: ord,
        }
    }

    #[test]
    fn dfs_pops_most_recent_first() {
        let mut s = Dfs::new();
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.frontier_len(), 3);
        assert_eq!(s.pop().unwrap().branch_ord, 2);
        assert_eq!(s.pop().unwrap().branch_ord, 1);
        assert_eq!(s.pop().unwrap().branch_ord, 0);
        assert!(s.pop().is_none());
    }

    #[test]
    fn bfs_pops_oldest_first() {
        let mut s = Bfs::new();
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.pop().unwrap().branch_ord, 0);
        assert_eq!(s.pop().unwrap().branch_ord, 1);
        assert_eq!(s.pop().unwrap().branch_ord, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn random_restart_is_seed_deterministic_and_complete() {
        let order = |seed: u64| {
            let mut s = RandomRestart::with_seed(seed);
            for i in 0..8 {
                s.push(candidate(i));
            }
            let mut seen = Vec::new();
            while let Some(c) = s.pop() {
                seen.push(c.branch_ord);
            }
            seen
        };
        let a = order(42);
        let b = order(42);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..8).collect::<Vec<_>>(),
            "every candidate popped once"
        );
        assert_ne!(order(42), order(43), "different seeds diverge");
    }
}
