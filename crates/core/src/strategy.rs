//! Pluggable path-selection strategies for the DSE worklist.
//!
//! The exploration loop maintains a *frontier* of pending branch flips.
//! Which entry is discharged next is the search policy — the paper's engine
//! hard-wires depth-first selection (§III-B), but the policy is orthogonal
//! to both the executor and the solver, so it is a pluggable seam. The
//! worklist structures are generic over the item they schedule and serve
//! two frontiers:
//!
//! * the **sequential** frontier of [`crate::Session`], holding
//!   [`Candidate`]s (live term handles, continued in place) behind the
//!   [`PathStrategy`] trait;
//! * the **shard-local** frontiers of [`crate::ParallelSession`], holding
//!   plain-data [`Prescription`]s behind the [`PrescriptionStrategy`]
//!   trait — the same policies, plus a [`steal`](PrescriptionStrategy::steal)
//!   end for idle workers.
//!
//! The policies:
//!
//! * [`Dfs`] — depth-first (the paper's behaviour, and the default): flip
//!   the deepest unexplored branch of the most recent path first;
//! * [`Bfs`] — breadth-first: flip the oldest, shallowest branch first,
//!   covering short prefixes before deep suffixes;
//! * [`RandomRestart`] — pick a uniformly pseudo-random frontier entry,
//!   restarting exploration from an unrelated part of the program; a
//!   deterministic seed keeps runs reproducible;
//! * [`CoverageGuided`] — pick the pending flip whose branch site is least
//!   covered in a shared [`CoverageMap`], surfacing unexecuted code early
//!   under a path budget (ties broken depth-first, so the order is a pure
//!   function of the coverage snapshots).
//!
//! All strategies enumerate the same complete path set on terminating
//! programs — only the discovery *order* (and thus which paths a truncated
//! exploration sees) differs. In a parallel session the policy affects
//! *scheduling only*: the merged results are canonically ordered and
//! identical for every policy (see [`crate::ParallelSession`]).

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use binsym_smt::Term;

use crate::coverage::{CoverageMap, CoverageSnapshot};
use crate::machine::TrailEntry;
use crate::prescribe::Prescription;

/// A plain-data copy of one shard's [`PrescriptionStrategy`] state, as
/// captured by [`PrescriptionStrategy::snapshot`] and persisted by the
/// [`crate::persist`] codec.
///
/// The snapshot carries everything a policy needs to resume *exactly* where
/// it stopped: the pending items in the policy's internal order, the
/// xorshift RNG state for [`RandomRestart`], and a [`CoverageSnapshot`] for
/// [`CoverageGuided`] (a scheduling-only signal — restoring it warms the
/// ranking, it never changes the merged results).
#[derive(Debug, Clone, PartialEq)]
pub struct FrontierSnapshot {
    /// The policy's [`PrescriptionStrategy::name`], checked on restore.
    pub strategy: String,
    /// Pending prescriptions in the policy's internal storage order.
    pub items: Vec<Prescription>,
    /// [`RandomRestart`]'s xorshift64* state (`None` for other policies).
    pub rng_state: Option<u64>,
    /// [`CoverageGuided`]'s map contents (`None` for other policies).
    pub coverage: Option<CoverageSnapshot>,
}

impl FrontierSnapshot {
    /// A snapshot carrying only a name and pending items (the common case).
    fn items_only(strategy: &str, items: Vec<Prescription>) -> Self {
        FrontierSnapshot {
            strategy: strategy.to_string(),
            items,
            rng_state: None,
            coverage: None,
        }
    }
}

/// A pending branch flip on the sequential frontier: live term handles
/// plus, in [`Candidate::prescription`], the plain-data form that lets the
/// same pending path be replayed on a fresh engine.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Trail entries preceding the flipped branch (the path-condition
    /// prefix that must hold for the flip to be meaningful).
    pub prefix: Vec<TrailEntry>,
    /// The branch condition being flipped.
    pub cond: Term,
    /// Direction it was taken originally (the flip asserts the opposite).
    pub taken: bool,
    /// Ordinal of the branch among the path's *branch* entries.
    pub branch_ord: usize,
    /// Replayable plain-data identity of this pending path.
    pub prescription: Prescription,
}

/// A worklist policy deciding which pending branch flip to discharge next.
///
/// Implementations must hand back every pushed candidate exactly once (in
/// any order); the [`crate::Session`] loop handles feasibility checking and
/// deduplication of the shared prefix.
pub trait PathStrategy: fmt::Debug {
    /// Human-readable policy name (for logs and summaries).
    fn name(&self) -> &'static str;

    /// Adds a candidate to the frontier.
    fn push(&mut self, candidate: Candidate);

    /// Removes and returns the next candidate to try, or `None` when the
    /// frontier is exhausted.
    fn pop(&mut self) -> Option<Candidate>;

    /// Number of pending candidates.
    fn frontier_len(&self) -> usize;
}

impl PathStrategy for Box<dyn PathStrategy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn push(&mut self, candidate: Candidate) {
        (**self).push(candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        (**self).pop()
    }

    fn frontier_len(&self) -> usize {
        (**self).frontier_len()
    }
}

/// A shard-local worklist policy over plain-data [`Prescription`]s, used by
/// the worker threads of [`crate::ParallelSession`].
///
/// Each worker owns one instance and pushes/pops through it; idle workers
/// *steal* from a victim's instance through [`PrescriptionStrategy::steal`],
/// which should hand out the entry the owner would schedule **last** (the
/// classic work-stealing discipline: the thief takes the biggest pending
/// subtree, minimizing contention on the owner's hot end).
///
/// The policy only shapes scheduling; every pushed prescription must be
/// handed out exactly once across `pop` and `steal`.
pub trait PrescriptionStrategy: fmt::Debug + Send {
    /// Human-readable policy name (for logs and summaries).
    fn name(&self) -> &'static str;

    /// Adds a prescription to this shard's frontier.
    fn push(&mut self, prescription: Prescription);

    /// Removes and returns the owner's next prescription.
    fn pop(&mut self) -> Option<Prescription>;

    /// Removes and returns a prescription for a *stealing* worker
    /// (default: same as [`PrescriptionStrategy::pop`]).
    fn steal(&mut self) -> Option<Prescription> {
        self.pop()
    }

    /// Number of pending prescriptions.
    fn frontier_len(&self) -> usize;

    /// Captures this shard's full scheduling state — pending items in
    /// internal order plus any policy-private state (RNG, coverage) — so a
    /// checkpoint can [`restore`](PrescriptionStrategy::restore) it and
    /// continue with the identical pop sequence.
    fn snapshot(&self) -> FrontierSnapshot;

    /// Re-seeds this shard from a snapshot taken by the *same* policy:
    /// appends the snapshot's items in order and adopts any policy-private
    /// state. Callers check [`FrontierSnapshot::strategy`] against
    /// [`PrescriptionStrategy::name`] before restoring.
    fn restore(&mut self, snapshot: FrontierSnapshot);
}

/// Depth-first selection (the paper's §III-B policy, and the default).
///
/// Generic over the scheduled item: `Dfs<Candidate>` (the default) is the
/// sequential [`PathStrategy`], `Dfs<Prescription>` the shard-local
/// [`PrescriptionStrategy`] — there the owner pops the deepest entry while
/// thieves steal the shallowest (largest) pending subtree.
#[derive(Debug)]
pub struct Dfs<T = Candidate> {
    stack: VecDeque<T>,
}

impl<T> Dfs<T> {
    /// Creates an empty depth-first frontier.
    pub fn new() -> Self {
        Dfs {
            stack: VecDeque::new(),
        }
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.stack.push_back(item);
    }

    /// Removes and returns the deepest (most recently pushed) item.
    pub fn pop(&mut self) -> Option<T> {
        self.stack.pop_back()
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.stack.len()
    }
}

impl<T> Default for Dfs<T> {
    fn default() -> Self {
        Dfs::new()
    }
}

impl PathStrategy for Dfs<Candidate> {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn push(&mut self, candidate: Candidate) {
        Dfs::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        Dfs::pop(self)
    }

    fn frontier_len(&self) -> usize {
        Dfs::frontier_len(self)
    }
}

impl PrescriptionStrategy for Dfs<Prescription> {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn push(&mut self, prescription: Prescription) {
        Dfs::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        Dfs::pop(self)
    }

    fn steal(&mut self) -> Option<Prescription> {
        self.stack.pop_front()
    }

    fn frontier_len(&self) -> usize {
        Dfs::frontier_len(self)
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot::items_only("dfs", self.stack.iter().cloned().collect())
    }

    fn restore(&mut self, snapshot: FrontierSnapshot) {
        self.stack.extend(snapshot.items);
    }
}

/// Breadth-first selection: oldest (shallowest) branch flips first.
///
/// Generic like [`Dfs`]; as a shard policy, thieves steal from the deep
/// end while the owner drains shallow prefixes.
#[derive(Debug)]
pub struct Bfs<T = Candidate> {
    queue: VecDeque<T>,
}

impl<T> Bfs<T> {
    /// Creates an empty breadth-first frontier.
    pub fn new() -> Self {
        Bfs {
            queue: VecDeque::new(),
        }
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.queue.push_back(item);
    }

    /// Removes and returns the oldest (shallowest) item.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.queue.len()
    }
}

impl<T> Default for Bfs<T> {
    fn default() -> Self {
        Bfs::new()
    }
}

impl PathStrategy for Bfs<Candidate> {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn push(&mut self, candidate: Candidate) {
        Bfs::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        Bfs::pop(self)
    }

    fn frontier_len(&self) -> usize {
        Bfs::frontier_len(self)
    }
}

impl PrescriptionStrategy for Bfs<Prescription> {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn push(&mut self, prescription: Prescription) {
        Bfs::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        Bfs::pop(self)
    }

    fn steal(&mut self) -> Option<Prescription> {
        self.queue.pop_back()
    }

    fn frontier_len(&self) -> usize {
        Bfs::frontier_len(self)
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot::items_only("bfs", self.queue.iter().cloned().collect())
    }

    fn restore(&mut self, snapshot: FrontierSnapshot) {
        self.queue.extend(snapshot.items);
    }
}

/// Random selection with restarts: each flip is drawn uniformly from the
/// whole frontier, so exploration repeatedly "restarts" from unrelated
/// program regions instead of draining one subtree.
///
/// The generator is a deterministic xorshift64*, so a given seed always
/// reproduces the same exploration order. Generic like [`Dfs`]; as a shard
/// policy both the owner and thieves draw randomly (in a parallel session
/// this only perturbs scheduling — the merged results are canonical).
#[derive(Debug)]
pub struct RandomRestart<T = Candidate> {
    frontier: Vec<T>,
    state: u64,
}

impl<T> RandomRestart<T> {
    /// Creates the strategy with an explicit seed (any value; 0 is mapped
    /// to a fixed nonzero constant).
    pub fn with_seed(seed: u64) -> Self {
        RandomRestart {
            frontier: Vec::new(),
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Creates the strategy with the default seed.
    pub fn new() -> Self {
        RandomRestart::with_seed(0x5eed_cafe_f00d_beef)
    }

    // Intentional fork of `binsym_testutil::Rng`'s xorshift64* step: the
    // product crate must not depend on a test-support crate, and the
    // strategy's exploration order is a stable, documented behaviour that
    // should not silently shift with test-generator tweaks.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Draws a uniform index below `n` by rejection sampling: draws whose
    /// value falls in the tail remainder of the 2⁶⁴ space are discarded, so
    /// every index is exactly equally likely (a bare `next_u64() % n` would
    /// favor small indices whenever `n` does not divide 2⁶⁴). Still a pure
    /// function of the seed.
    fn next_below(&mut self, n: usize) -> usize {
        let n = n as u64;
        debug_assert!(n > 0);
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let x = self.next_u64();
            if x < zone {
                return (x % n) as usize;
            }
        }
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.frontier.push(item);
    }

    /// Removes and returns a uniformly pseudo-random item.
    pub fn pop(&mut self) -> Option<T> {
        if self.frontier.is_empty() {
            return None;
        }
        let i = self.next_below(self.frontier.len());
        Some(self.frontier.swap_remove(i))
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

impl<T> Default for RandomRestart<T> {
    fn default() -> Self {
        RandomRestart::new()
    }
}

impl PathStrategy for RandomRestart<Candidate> {
    fn name(&self) -> &'static str {
        "random-restart"
    }

    fn push(&mut self, candidate: Candidate) {
        RandomRestart::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        RandomRestart::pop(self)
    }

    fn frontier_len(&self) -> usize {
        RandomRestart::frontier_len(self)
    }
}

impl PrescriptionStrategy for RandomRestart<Prescription> {
    fn name(&self) -> &'static str {
        "random-restart"
    }

    fn push(&mut self, prescription: Prescription) {
        RandomRestart::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        RandomRestart::pop(self)
    }

    fn frontier_len(&self) -> usize {
        RandomRestart::frontier_len(self)
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot {
            rng_state: Some(self.state),
            ..FrontierSnapshot::items_only("random-restart", self.frontier.clone())
        }
    }

    fn restore(&mut self, snapshot: FrontierSnapshot) {
        self.frontier.extend(snapshot.items);
        if let Some(state) = snapshot.rng_state {
            self.state = state;
        }
    }
}

/// A frontier item that knows the branch flip it describes — the hook the
/// [`CoverageGuided`] policy ranks by. Implemented by both frontier item
/// kinds ([`Candidate`] and [`Prescription`]).
pub trait BranchSited {
    /// The branch site's program counter and the direction the flip would
    /// *assert* (the opposite of what the parent path took). `None` for
    /// the root prescription, which always schedules first.
    fn flip_site(&self) -> Option<(u32, bool)>;
}

impl BranchSited for Candidate {
    fn flip_site(&self) -> Option<(u32, bool)> {
        self.prescription.flip_site()
    }
}

impl BranchSited for Prescription {
    fn flip_site(&self) -> Option<(u32, bool)> {
        self.flip.map(|f| (f.pc, !f.taken))
    }
}

/// Coverage-guided selection: pop the pending flip whose branch site is
/// least covered in a shared [`CoverageMap`] — concretely, a flip ranks as
/// **uncovered** while no explored path has ever driven its branch in the
/// direction the flip asserts (the site itself always executed: the parent
/// path went through it). Discharging an uncovered flip is therefore
/// guaranteed new behaviour, which is what should surface first under a
/// path budget ([`crate::SessionBuilder::limit`]).
///
/// With the map's one-bit-per-direction signal "least covered" is binary:
/// **uncovered before covered**. Within each class the tie-break is
/// deterministic depth-first (most recently pushed entry first), so the
/// pop order is a pure function of the push sequence and the coverage
/// snapshots at pop time — a sequential session is exactly reproducible,
/// and a parallel session's merged results are canonical for 1..N workers
/// regardless of how the racy snapshots perturb scheduling (see
/// [`crate::ParallelSession`]).
///
/// Generic like [`Dfs`]: `CoverageGuided<Candidate>` (the default) is the
/// sequential [`PathStrategy`] — pair it with a
/// [`crate::CoverageObserver`] on the same map so executed paths feed the
/// signal — and `CoverageGuided<Prescription>` the shard-local
/// [`PrescriptionStrategy`], where thieves steal from the cold end (the
/// oldest *covered* entry, falling back to the oldest entry).
pub struct CoverageGuided<T = Candidate> {
    frontier: Vec<T>,
    map: Arc<CoverageMap>,
}

impl<T> fmt::Debug for CoverageGuided<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoverageGuided")
            .field("frontier_len", &self.frontier.len())
            .field("covered", &self.map.covered_count())
            .finish()
    }
}

impl<T: BranchSited> CoverageGuided<T> {
    /// Creates the strategy reading the shared coverage `map`.
    pub fn new(map: Arc<CoverageMap>) -> Self {
        CoverageGuided {
            frontier: Vec::new(),
            map,
        }
    }

    /// The shared map this strategy ranks against.
    pub fn map(&self) -> &Arc<CoverageMap> {
        &self.map
    }

    /// True when the direction this item's flip asserts has never been
    /// observed at its branch site (the root prescription counts as
    /// uncovered: it must run before anything else can).
    fn is_uncovered(&self, item: &T) -> bool {
        match item.flip_site() {
            None => true,
            Some((pc, dir)) => !self.map.is_direction_covered(pc, dir),
        }
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.frontier.push(item);
    }

    /// Removes and returns the most recently pushed *uncovered* entry,
    /// falling back to the most recently pushed entry (plain depth-first)
    /// when every branch site is already covered.
    pub fn pop(&mut self) -> Option<T> {
        let i = self
            .frontier
            .iter()
            .rposition(|item| self.is_uncovered(item))
            .or_else(|| self.frontier.len().checked_sub(1))?;
        Some(self.frontier.remove(i))
    }

    /// Removes and returns the entry the owner would schedule last: the
    /// oldest *covered* entry, falling back to the oldest entry.
    pub fn steal(&mut self) -> Option<T> {
        if self.frontier.is_empty() {
            return None;
        }
        let i = self
            .frontier
            .iter()
            .position(|item| !self.is_uncovered(item))
            .unwrap_or(0);
        Some(self.frontier.remove(i))
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

impl PathStrategy for CoverageGuided<Candidate> {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn push(&mut self, candidate: Candidate) {
        CoverageGuided::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        CoverageGuided::pop(self)
    }

    fn frontier_len(&self) -> usize {
        CoverageGuided::frontier_len(self)
    }
}

impl PrescriptionStrategy for CoverageGuided<Prescription> {
    fn name(&self) -> &'static str {
        "coverage"
    }

    fn push(&mut self, prescription: Prescription) {
        CoverageGuided::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        CoverageGuided::pop(self)
    }

    fn steal(&mut self) -> Option<Prescription> {
        CoverageGuided::steal(self)
    }

    fn frontier_len(&self) -> usize {
        CoverageGuided::frontier_len(self)
    }

    fn snapshot(&self) -> FrontierSnapshot {
        FrontierSnapshot {
            coverage: Some(self.map.snapshot()),
            ..FrontierSnapshot::items_only("coverage", self.frontier.clone())
        }
    }

    fn restore(&mut self, snapshot: FrontierSnapshot) {
        self.frontier.extend(snapshot.items);
        // The map is a scheduling-only heuristic; a geometry mismatch
        // (snapshot from a different binary) just means the ranking warms
        // from scratch, so a failed restore is silently skipped.
        if let Some(cov) = &snapshot.coverage {
            let _ = self.map.restore(cov);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prescribe::{Flip, PathId};
    use binsym_smt::TermManager;

    fn candidate(ord: usize) -> Candidate {
        let mut tm = TermManager::new();
        let v = tm.var("c", 1);
        let one = tm.bv_const(1, 1);
        Candidate {
            prefix: Vec::new(),
            cond: tm.eq(v, one),
            taken: true,
            branch_ord: ord,
            prescription: prescription(ord),
        }
    }

    fn prescription(ord: usize) -> Prescription {
        // A distinct 4-byte-aligned branch site per ordinal, so coverage
        // tests can mark individual sites.
        Prescription {
            id: PathId::root().child(ord),
            input: vec![0],
            flip: Some(Flip {
                ord,
                taken: true,
                pc: 0x1000 + 4 * ord as u32,
            }),
            policy: crate::memory::AddressPolicyKind::default(),
        }
    }

    #[test]
    fn dfs_pops_most_recent_first() {
        let mut s = Dfs::new();
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.frontier_len(), 3);
        assert_eq!(s.pop().unwrap().branch_ord, 2);
        assert_eq!(s.pop().unwrap().branch_ord, 1);
        assert_eq!(s.pop().unwrap().branch_ord, 0);
        assert!(s.pop().is_none());
    }

    #[test]
    fn bfs_pops_oldest_first() {
        let mut s = Bfs::new();
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.pop().unwrap().branch_ord, 0);
        assert_eq!(s.pop().unwrap().branch_ord, 1);
        assert_eq!(s.pop().unwrap().branch_ord, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn random_restart_is_seed_deterministic_and_complete() {
        let order = |seed: u64| {
            let mut s = RandomRestart::with_seed(seed);
            for i in 0..8 {
                s.push(candidate(i));
            }
            let mut seen = Vec::new();
            while let Some(c) = s.pop() {
                seen.push(c.branch_ord);
            }
            seen
        };
        let a = order(42);
        let b = order(42);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..8).collect::<Vec<_>>(),
            "every candidate popped once"
        );
        assert_ne!(order(42), order(43), "different seeds diverge");
    }

    #[test]
    fn shard_policies_steal_from_the_cold_end() {
        let ord_of = |p: Prescription| p.flip.unwrap().ord;

        let mut dfs = Dfs::<Prescription>::new();
        for i in 0..3 {
            dfs.push(prescription(i));
        }
        assert_eq!(dfs.steal().map(ord_of), Some(0), "dfs thief takes oldest");
        assert_eq!(dfs.pop().map(ord_of), Some(2), "dfs owner keeps newest");

        let mut bfs = Bfs::<Prescription>::new();
        for i in 0..3 {
            bfs.push(prescription(i));
        }
        assert_eq!(bfs.steal().map(ord_of), Some(2), "bfs thief takes newest");
        assert_eq!(bfs.pop().map(ord_of), Some(0));
    }

    #[test]
    fn shard_policies_hand_out_every_item_once() {
        fn drain(mut s: Box<dyn PrescriptionStrategy>) -> Vec<usize> {
            let mut out = Vec::new();
            loop {
                // Alternate owner pops and steals to exercise both ends.
                let next = if out.len() % 2 == 0 {
                    s.pop()
                } else {
                    s.steal()
                };
                match next {
                    Some(p) => out.push(p.flip.unwrap().ord),
                    None => break,
                }
            }
            out
        }
        let map = Arc::new(CoverageMap::new(0x1000, 0x100));
        map.mark_direction(0x1004, false); // ord 1 covered: exercise ranking too
        let policies: [Box<dyn PrescriptionStrategy>; 4] = [
            Box::new(Dfs::<Prescription>::new()),
            Box::new(Bfs::<Prescription>::new()),
            Box::new(RandomRestart::<Prescription>::with_seed(7)),
            Box::new(CoverageGuided::<Prescription>::new(map)),
        ];
        for mut s in policies {
            for i in 0..6 {
                s.push(prescription(i));
            }
            assert_eq!(s.frontier_len(), 6);
            let mut seen = drain(s);
            seen.sort_unstable();
            assert_eq!(seen, (0..6).collect::<Vec<_>>());
        }
    }

    #[test]
    fn random_restart_pop_is_unbiased() {
        // Rejection sampling: for frontier lengths that do not divide 2^64
        // the old `next_u64() % len` draw was (infinitesimally) biased; the
        // uniformity of the *generator + draw* pipeline is what this sanity
        // test pins — each index must be hit in proportion over many draws.
        for len in [3usize, 5, 6, 7] {
            let mut s = RandomRestart::<Prescription>::with_seed(0x5eed ^ len as u64);
            let trials = 3000;
            let mut hits = vec![0u32; len];
            for _ in 0..trials {
                for i in 0..len {
                    s.push(prescription(i));
                }
                let first = s.pop().expect("non-empty").flip.unwrap().ord;
                hits[first] += 1;
                while s.pop().is_some() {}
            }
            let expected = trials as f64 / len as f64;
            for (i, &h) in hits.iter().enumerate() {
                let dev = (f64::from(h) - expected).abs() / expected;
                assert!(
                    dev < 0.25,
                    "len {len}: index {i} hit {h} times (expected ~{expected:.0})"
                );
            }
        }
    }

    #[test]
    fn random_restart_rejection_sampling_stays_seed_deterministic() {
        let order = |seed: u64| {
            let mut s = RandomRestart::<Prescription>::with_seed(seed);
            for i in 0..7 {
                s.push(prescription(i));
            }
            let mut seen = Vec::new();
            while let Some(p) = s.pop() {
                seen.push(p.flip.unwrap().ord);
            }
            seen
        };
        assert_eq!(order(123), order(123));
    }

    #[test]
    fn coverage_guided_prefers_uncovered_branch_sites() {
        let map = Arc::new(CoverageMap::new(0x1000, 0x100));
        let mut s = CoverageGuided::<Prescription>::new(Arc::clone(&map));
        for i in 0..4 {
            s.push(prescription(i));
        }
        // The directions flips 2 and 3 would assert (`taken: true` parents,
        // so the flips drive `false`) were already observed: the policy
        // must pick the newest *uncovered* flip (ord 1), not the newest
        // overall (ord 3). Executing the sites alone changes nothing — a
        // pending flip's site always executed on its parent path.
        map.mark(0x1008);
        map.mark(0x100c);
        map.mark_direction(0x1008, false);
        map.mark_direction(0x100c, false);
        assert_eq!(s.pop().unwrap().flip.unwrap().ord, 1);
        assert_eq!(s.pop().unwrap().flip.unwrap().ord, 0);
        // All remaining sites covered: fall back to plain depth-first.
        assert_eq!(s.pop().unwrap().flip.unwrap().ord, 3);
        assert_eq!(s.pop().unwrap().flip.unwrap().ord, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn coverage_guided_schedules_root_first_and_steals_covered_first() {
        let map = Arc::new(CoverageMap::new(0x1000, 0x100));
        let mut s = CoverageGuided::<Prescription>::new(Arc::clone(&map));
        s.push(Prescription::root(
            vec![0],
            crate::memory::AddressPolicyKind::default(),
        ));
        assert!(
            s.pop().unwrap().flip.is_none(),
            "root counts as uncovered and schedules"
        );

        for i in 0..3 {
            s.push(prescription(i));
        }
        map.mark_direction(0x1004, false); // ord 1's flip direction covered
        let stolen = PrescriptionStrategy::steal(&mut s).unwrap();
        assert_eq!(
            stolen.flip.unwrap().ord,
            1,
            "thief takes the covered entry the owner wants least"
        );
        // No covered entries left: thief falls back to the oldest.
        let stolen = PrescriptionStrategy::steal(&mut s).unwrap();
        assert_eq!(stolen.flip.unwrap().ord, 0);
        assert_eq!(s.pop().unwrap().flip.unwrap().ord, 2);
    }

    #[test]
    fn coverage_guided_serves_the_sequential_frontier_too() {
        let map = Arc::new(CoverageMap::new(0x1000, 0x100));
        let mut s: Box<dyn PathStrategy> = Box::new(CoverageGuided::<Candidate>::new(map));
        assert_eq!(s.name(), "coverage");
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.frontier_len(), 3);
        let mut seen: Vec<usize> = std::iter::from_fn(|| s.pop().map(|c| c.branch_ord)).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }
}
