//! Pluggable path-selection strategies for the DSE worklist.
//!
//! The exploration loop maintains a *frontier* of pending branch flips.
//! Which entry is discharged next is the search policy — the paper's engine
//! hard-wires depth-first selection (§III-B), but the policy is orthogonal
//! to both the executor and the solver, so it is a pluggable seam. The
//! worklist structures are generic over the item they schedule and serve
//! two frontiers:
//!
//! * the **sequential** frontier of [`crate::Session`], holding
//!   [`Candidate`]s (live term handles, continued in place) behind the
//!   [`PathStrategy`] trait;
//! * the **shard-local** frontiers of [`crate::ParallelSession`], holding
//!   plain-data [`Prescription`]s behind the [`PrescriptionStrategy`]
//!   trait — the same policies, plus a [`steal`](PrescriptionStrategy::steal)
//!   end for idle workers.
//!
//! The policies:
//!
//! * [`Dfs`] — depth-first (the paper's behaviour, and the default): flip
//!   the deepest unexplored branch of the most recent path first;
//! * [`Bfs`] — breadth-first: flip the oldest, shallowest branch first,
//!   covering short prefixes before deep suffixes;
//! * [`RandomRestart`] — pick a uniformly pseudo-random frontier entry,
//!   restarting exploration from an unrelated part of the program; a
//!   deterministic seed keeps runs reproducible.
//!
//! All strategies enumerate the same complete path set on terminating
//! programs — only the discovery *order* (and thus which paths a truncated
//! exploration sees) differs. In a parallel session the policy affects
//! *scheduling only*: the merged results are canonically ordered and
//! identical for every policy (see [`crate::ParallelSession`]).

use std::collections::VecDeque;
use std::fmt;

use binsym_smt::Term;

use crate::machine::TrailEntry;
use crate::prescribe::Prescription;

/// A pending branch flip on the sequential frontier: live term handles
/// plus, in [`Candidate::prescription`], the plain-data form that lets the
/// same pending path be replayed on a fresh engine.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// Trail entries preceding the flipped branch (the path-condition
    /// prefix that must hold for the flip to be meaningful).
    pub prefix: Vec<TrailEntry>,
    /// The branch condition being flipped.
    pub cond: Term,
    /// Direction it was taken originally (the flip asserts the opposite).
    pub taken: bool,
    /// Ordinal of the branch among the path's *branch* entries.
    pub branch_ord: usize,
    /// Replayable plain-data identity of this pending path.
    pub prescription: Prescription,
}

/// A worklist policy deciding which pending branch flip to discharge next.
///
/// Implementations must hand back every pushed candidate exactly once (in
/// any order); the [`crate::Session`] loop handles feasibility checking and
/// deduplication of the shared prefix.
pub trait PathStrategy: fmt::Debug {
    /// Human-readable policy name (for logs and summaries).
    fn name(&self) -> &'static str;

    /// Adds a candidate to the frontier.
    fn push(&mut self, candidate: Candidate);

    /// Removes and returns the next candidate to try, or `None` when the
    /// frontier is exhausted.
    fn pop(&mut self) -> Option<Candidate>;

    /// Number of pending candidates.
    fn frontier_len(&self) -> usize;
}

impl PathStrategy for Box<dyn PathStrategy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn push(&mut self, candidate: Candidate) {
        (**self).push(candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        (**self).pop()
    }

    fn frontier_len(&self) -> usize {
        (**self).frontier_len()
    }
}

/// A shard-local worklist policy over plain-data [`Prescription`]s, used by
/// the worker threads of [`crate::ParallelSession`].
///
/// Each worker owns one instance and pushes/pops through it; idle workers
/// *steal* from a victim's instance through [`PrescriptionStrategy::steal`],
/// which should hand out the entry the owner would schedule **last** (the
/// classic work-stealing discipline: the thief takes the biggest pending
/// subtree, minimizing contention on the owner's hot end).
///
/// The policy only shapes scheduling; every pushed prescription must be
/// handed out exactly once across `pop` and `steal`.
pub trait PrescriptionStrategy: fmt::Debug + Send {
    /// Human-readable policy name (for logs and summaries).
    fn name(&self) -> &'static str;

    /// Adds a prescription to this shard's frontier.
    fn push(&mut self, prescription: Prescription);

    /// Removes and returns the owner's next prescription.
    fn pop(&mut self) -> Option<Prescription>;

    /// Removes and returns a prescription for a *stealing* worker
    /// (default: same as [`PrescriptionStrategy::pop`]).
    fn steal(&mut self) -> Option<Prescription> {
        self.pop()
    }

    /// Number of pending prescriptions.
    fn frontier_len(&self) -> usize;
}

/// Depth-first selection (the paper's §III-B policy, and the default).
///
/// Generic over the scheduled item: `Dfs<Candidate>` (the default) is the
/// sequential [`PathStrategy`], `Dfs<Prescription>` the shard-local
/// [`PrescriptionStrategy`] — there the owner pops the deepest entry while
/// thieves steal the shallowest (largest) pending subtree.
#[derive(Debug)]
pub struct Dfs<T = Candidate> {
    stack: VecDeque<T>,
}

impl<T> Dfs<T> {
    /// Creates an empty depth-first frontier.
    pub fn new() -> Self {
        Dfs {
            stack: VecDeque::new(),
        }
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.stack.push_back(item);
    }

    /// Removes and returns the deepest (most recently pushed) item.
    pub fn pop(&mut self) -> Option<T> {
        self.stack.pop_back()
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.stack.len()
    }
}

impl<T> Default for Dfs<T> {
    fn default() -> Self {
        Dfs::new()
    }
}

impl PathStrategy for Dfs<Candidate> {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn push(&mut self, candidate: Candidate) {
        Dfs::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        Dfs::pop(self)
    }

    fn frontier_len(&self) -> usize {
        Dfs::frontier_len(self)
    }
}

impl PrescriptionStrategy for Dfs<Prescription> {
    fn name(&self) -> &'static str {
        "dfs"
    }

    fn push(&mut self, prescription: Prescription) {
        Dfs::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        Dfs::pop(self)
    }

    fn steal(&mut self) -> Option<Prescription> {
        self.stack.pop_front()
    }

    fn frontier_len(&self) -> usize {
        Dfs::frontier_len(self)
    }
}

/// Breadth-first selection: oldest (shallowest) branch flips first.
///
/// Generic like [`Dfs`]; as a shard policy, thieves steal from the deep
/// end while the owner drains shallow prefixes.
#[derive(Debug)]
pub struct Bfs<T = Candidate> {
    queue: VecDeque<T>,
}

impl<T> Bfs<T> {
    /// Creates an empty breadth-first frontier.
    pub fn new() -> Self {
        Bfs {
            queue: VecDeque::new(),
        }
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.queue.push_back(item);
    }

    /// Removes and returns the oldest (shallowest) item.
    pub fn pop(&mut self) -> Option<T> {
        self.queue.pop_front()
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.queue.len()
    }
}

impl<T> Default for Bfs<T> {
    fn default() -> Self {
        Bfs::new()
    }
}

impl PathStrategy for Bfs<Candidate> {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn push(&mut self, candidate: Candidate) {
        Bfs::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        Bfs::pop(self)
    }

    fn frontier_len(&self) -> usize {
        Bfs::frontier_len(self)
    }
}

impl PrescriptionStrategy for Bfs<Prescription> {
    fn name(&self) -> &'static str {
        "bfs"
    }

    fn push(&mut self, prescription: Prescription) {
        Bfs::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        Bfs::pop(self)
    }

    fn steal(&mut self) -> Option<Prescription> {
        self.queue.pop_back()
    }

    fn frontier_len(&self) -> usize {
        Bfs::frontier_len(self)
    }
}

/// Random selection with restarts: each flip is drawn uniformly from the
/// whole frontier, so exploration repeatedly "restarts" from unrelated
/// program regions instead of draining one subtree.
///
/// The generator is a deterministic xorshift64*, so a given seed always
/// reproduces the same exploration order. Generic like [`Dfs`]; as a shard
/// policy both the owner and thieves draw randomly (in a parallel session
/// this only perturbs scheduling — the merged results are canonical).
#[derive(Debug)]
pub struct RandomRestart<T = Candidate> {
    frontier: Vec<T>,
    state: u64,
}

impl<T> RandomRestart<T> {
    /// Creates the strategy with an explicit seed (any value; 0 is mapped
    /// to a fixed nonzero constant).
    pub fn with_seed(seed: u64) -> Self {
        RandomRestart {
            frontier: Vec::new(),
            state: if seed == 0 {
                0x9e37_79b9_7f4a_7c15
            } else {
                seed
            },
        }
    }

    /// Creates the strategy with the default seed.
    pub fn new() -> Self {
        RandomRestart::with_seed(0x5eed_cafe_f00d_beef)
    }

    // Intentional fork of `binsym_testutil::Rng`'s xorshift64* step: the
    // product crate must not depend on a test-support crate, and the
    // strategy's exploration order is a stable, documented behaviour that
    // should not silently shift with test-generator tweaks.
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Adds an item to the frontier.
    pub fn push(&mut self, item: T) {
        self.frontier.push(item);
    }

    /// Removes and returns a uniformly pseudo-random item.
    pub fn pop(&mut self) -> Option<T> {
        if self.frontier.is_empty() {
            return None;
        }
        let i = (self.next_u64() as usize) % self.frontier.len();
        Some(self.frontier.swap_remove(i))
    }

    /// Number of pending items.
    pub fn frontier_len(&self) -> usize {
        self.frontier.len()
    }
}

impl<T> Default for RandomRestart<T> {
    fn default() -> Self {
        RandomRestart::new()
    }
}

impl PathStrategy for RandomRestart<Candidate> {
    fn name(&self) -> &'static str {
        "random-restart"
    }

    fn push(&mut self, candidate: Candidate) {
        RandomRestart::push(self, candidate);
    }

    fn pop(&mut self) -> Option<Candidate> {
        RandomRestart::pop(self)
    }

    fn frontier_len(&self) -> usize {
        RandomRestart::frontier_len(self)
    }
}

impl PrescriptionStrategy for RandomRestart<Prescription> {
    fn name(&self) -> &'static str {
        "random-restart"
    }

    fn push(&mut self, prescription: Prescription) {
        RandomRestart::push(self, prescription);
    }

    fn pop(&mut self) -> Option<Prescription> {
        RandomRestart::pop(self)
    }

    fn frontier_len(&self) -> usize {
        RandomRestart::frontier_len(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prescribe::{Flip, PathId};
    use binsym_smt::TermManager;

    fn candidate(ord: usize) -> Candidate {
        let mut tm = TermManager::new();
        let v = tm.var("c", 1);
        let one = tm.bv_const(1, 1);
        Candidate {
            prefix: Vec::new(),
            cond: tm.eq(v, one),
            taken: true,
            branch_ord: ord,
            prescription: prescription(ord),
        }
    }

    fn prescription(ord: usize) -> Prescription {
        Prescription {
            id: PathId::root().child(ord),
            input: vec![0],
            flip: Some(Flip { ord, taken: true }),
        }
    }

    #[test]
    fn dfs_pops_most_recent_first() {
        let mut s = Dfs::new();
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.frontier_len(), 3);
        assert_eq!(s.pop().unwrap().branch_ord, 2);
        assert_eq!(s.pop().unwrap().branch_ord, 1);
        assert_eq!(s.pop().unwrap().branch_ord, 0);
        assert!(s.pop().is_none());
    }

    #[test]
    fn bfs_pops_oldest_first() {
        let mut s = Bfs::new();
        for i in 0..3 {
            s.push(candidate(i));
        }
        assert_eq!(s.pop().unwrap().branch_ord, 0);
        assert_eq!(s.pop().unwrap().branch_ord, 1);
        assert_eq!(s.pop().unwrap().branch_ord, 2);
        assert!(s.pop().is_none());
    }

    #[test]
    fn random_restart_is_seed_deterministic_and_complete() {
        let order = |seed: u64| {
            let mut s = RandomRestart::with_seed(seed);
            for i in 0..8 {
                s.push(candidate(i));
            }
            let mut seen = Vec::new();
            while let Some(c) = s.pop() {
                seen.push(c.branch_ord);
            }
            seen
        };
        let a = order(42);
        let b = order(42);
        assert_eq!(a, b, "same seed, same order");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..8).collect::<Vec<_>>(),
            "every candidate popped once"
        );
        assert_ne!(order(42), order(43), "different seeds diverge");
    }

    #[test]
    fn shard_policies_steal_from_the_cold_end() {
        let ord_of = |p: Prescription| p.flip.unwrap().ord;

        let mut dfs = Dfs::<Prescription>::new();
        for i in 0..3 {
            dfs.push(prescription(i));
        }
        assert_eq!(dfs.steal().map(ord_of), Some(0), "dfs thief takes oldest");
        assert_eq!(dfs.pop().map(ord_of), Some(2), "dfs owner keeps newest");

        let mut bfs = Bfs::<Prescription>::new();
        for i in 0..3 {
            bfs.push(prescription(i));
        }
        assert_eq!(bfs.steal().map(ord_of), Some(2), "bfs thief takes newest");
        assert_eq!(bfs.pop().map(ord_of), Some(0));
    }

    #[test]
    fn shard_policies_hand_out_every_item_once() {
        fn drain(mut s: Box<dyn PrescriptionStrategy>) -> Vec<usize> {
            let mut out = Vec::new();
            loop {
                // Alternate owner pops and steals to exercise both ends.
                let next = if out.len() % 2 == 0 {
                    s.pop()
                } else {
                    s.steal()
                };
                match next {
                    Some(p) => out.push(p.flip.unwrap().ord),
                    None => break,
                }
            }
            out
        }
        let policies: [Box<dyn PrescriptionStrategy>; 3] = [
            Box::new(Dfs::<Prescription>::new()),
            Box::new(Bfs::<Prescription>::new()),
            Box::new(RandomRestart::<Prescription>::with_seed(7)),
        ];
        for mut s in policies {
            for i in 0..6 {
                s.push(prescription(i));
            }
            assert_eq!(s.frontier_len(), 6);
            let mut seen = drain(s);
            seen.sort_unstable();
            assert_eq!(seen, (0..6).collect::<Vec<_>>());
        }
    }
}
