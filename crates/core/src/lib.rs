//! `binsym` — symbolic execution of RISC-V binary code based on formal ISA
//! semantics.
//!
//! This is the Rust reproduction of the paper's BinSym engine: a *symbolic
//! modular interpreter* for the executable formal specification in
//! `binsym-isa`. The engine never looks at instruction words itself — it
//! interprets the specification's language primitives:
//!
//! * arithmetic/logic primitives ([`binsym_isa::Expr`]) are mapped to SMT
//!   bitvector terms (`binsym-smt`) — the *encode* step of Fig. 1;
//! * stateful primitives ([`binsym_isa::Stmt`]) operate on symbolic variants
//!   of the register file and memory, reusing the specification's generic
//!   components — the *semanticize* step;
//! * the `runIfElse` primitive triggers branch feasibility reasoning: when a
//!   condition depends on symbolic input, the engine queries the solver for
//!   both outcomes and explores the feasible ones.
//!
//! Exploration is driven by a [`Session`], assembled with a builder over
//! three pluggable seams:
//!
//! * [`PathStrategy`] — which pending branch flip to try next ([`Dfs`],
//!   the paper's §III-B policy and the default; [`Bfs`]; [`RandomRestart`];
//!   [`CoverageGuided`], ranking flips against a lock-free [`CoverageMap`]);
//! * [`SolverBackend`] — how feasibility queries are discharged
//!   ([`BitblastBackend`] incremental or fresh-per-query; [`SmtLibDump`]
//!   recording every query as an SMT-LIB v2 script for offline replay),
//!   fronted by a word-level static-analysis gate ([`StaticGate`], on by
//!   default) that prunes flip queries the path condition already
//!   decides — without ever changing results (see
//!   [`SessionBuilder::static_analysis`]);
//! * [`Observer`] — instrumentation hooks (`on_step`/`on_branch`/
//!   `on_path`/`on_query`) for cost models and coverage tracking.
//!
//! Paths stream lazily from [`Session::paths`]; [`Session::run_all`]
//! drains them into a [`Summary`]. All errors unify under [`Error`].
//!
//! The same builder also assembles a **sharded** exploration:
//! `.workers(n).build_parallel()` yields a [`ParallelSession`] whose worker
//! threads each own a complete engine and exchange pending paths as
//! plain-data, replayable [`Prescription`]s through work-stealing shard
//! frontiers — with results merged deterministically into the sequential
//! discovery order (see [`parallel`] and [`prescribe`]).
//!
//! # Quickstart
//! ```
//! use binsym::Session;
//! use binsym_asm::Assembler;
//! use binsym_isa::Spec;
//!
//! // if (x == 42) exit(1) else exit(0), with x read from symbolic input.
//! let elf = Assembler::new().assemble(r#"
//!         .data
//! __sym_input:
//!         .word 0
//!         .text
//! _start:
//!         la a0, __sym_input
//!         lw a1, 0(a0)
//!         li a2, 42
//!         beq a1, a2, hit
//!         li a0, 0
//!         li a7, 93
//!         ecall
//! hit:
//!         li a0, 1
//!         li a7, 93
//!         ecall
//! "#)?;
//! let mut session = Session::builder(Spec::rv32im()).binary(&elf).build()?;
//! let summary = session.run_all()?;
//! assert_eq!(summary.paths, 2);
//! assert_eq!(summary.error_paths.len(), 1); // the exit(1) path
//!
//! // Or stream the paths lazily and stop at the first bug:
//! let mut session = Session::builder(Spec::rv32im()).binary(&elf).build()?;
//! let bug = session.paths().find(|p| p.as_ref().is_ok_and(|p| p.is_error()));
//! assert_eq!(bug.unwrap()?.input, vec![42, 0, 0, 0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod coverage;
pub mod error;
pub mod machine;
pub mod memory;
pub mod metrics;
pub mod observe;
pub mod parallel;
pub mod persist;
pub mod prescribe;
pub mod session;
pub mod strategy;
pub mod trace;
pub mod value;
pub mod warm;

pub use backend::{
    BitblastBackend, ScreenReport, ScriptSink, SmtLibDump, SolverBackend, StaticGate,
};
pub use coverage::{CoverageMap, CoverageObserver, CoverageSnapshot};
pub use error::Error;
pub use machine::{ExecError, StepResult, SymMachine, TrailEntry};
pub use memory::{AddressPolicy, AddressPolicyKind, Resolution};
pub use metrics::{
    Histogram, HistogramSnapshot, MetricsRegistry, MetricsReport, Phase, WorkerMetrics,
};
pub use observe::{
    CheckpointEvent, CountingObserver, NullObserver, Observer, StaticAnalysisStats, WarmQueryStats,
};
pub use parallel::{
    BackendFactory, ExecutorFactory, ObserverFactory, ParallelSession, ShardStrategyFactory,
};
pub use persist::{
    decode_one, decode_seq, encode_one, encode_seq, Dec, Document, Enc, PersistError, Wire,
};
pub use prescribe::{Flip, PathId, PathRecord, Prescription};
pub use session::{
    find_sym_input, ErrorPath, PathExecutor, PathOutcome, Paths, Session, SessionBuilder,
    SpecExecutor, Summary,
};
pub use strategy::{
    Bfs, BranchSited, Candidate, CoverageGuided, Dfs, FrontierSnapshot, PathStrategy,
    PrescriptionStrategy, RandomRestart,
};
pub use trace::{ChromeTraceSink, JsonlTraceSink, TraceSink};
pub use value::{SymByte, SymWord};

/// Name of the symbol marking the symbolic input region in SUT binaries
/// (the harness replaces its bytes with fresh symbolic variables).
pub const SYM_INPUT_SYMBOL: &str = "__sym_input";

/// Syscall number of `exit` in the harness ABI.
pub const SYSCALL_EXIT: u32 = 93;
