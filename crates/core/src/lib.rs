//! `binsym` — symbolic execution of RISC-V binary code based on formal ISA
//! semantics.
//!
//! This is the Rust reproduction of the paper's BinSym engine: a *symbolic
//! modular interpreter* for the executable formal specification in
//! `binsym-isa`. The engine never looks at instruction words itself — it
//! interprets the specification's language primitives:
//!
//! * arithmetic/logic primitives ([`binsym_isa::Expr`]) are mapped to SMT
//!   bitvector terms (`binsym-smt`) — the *encode* step of Fig. 1;
//! * stateful primitives ([`binsym_isa::Stmt`]) operate on symbolic variants
//!   of the register file and memory, reusing the specification's generic
//!   components — the *semanticize* step;
//! * the `runIfElse` primitive triggers branch feasibility reasoning: when a
//!   condition depends on symbolic input, the engine queries the solver for
//!   both outcomes and explores the feasible ones.
//!
//! Exploration follows the paper's §III-B: an **offline executor**
//! implementing dynamic symbolic execution with depth-first path selection
//! and address concretization. Each completed execution is one *path*; the
//! engine restarts the binary from scratch with fresh solver-provided inputs
//! for every path.
//!
//! # Quickstart
//! ```
//! use binsym::Explorer;
//! use binsym_asm::Assembler;
//! use binsym_isa::Spec;
//!
//! // if (x == 42) exit(1) else exit(0), with x read from symbolic input.
//! let elf = Assembler::new().assemble(r#"
//!         .data
//! __sym_input:
//!         .word 0
//!         .text
//! _start:
//!         la a0, __sym_input
//!         lw a1, 0(a0)
//!         li a2, 42
//!         beq a1, a2, hit
//!         li a0, 0
//!         li a7, 93
//!         ecall
//! hit:
//!         li a0, 1
//!         li a7, 93
//!         ecall
//! "#)?;
//! let mut explorer = Explorer::new(Spec::rv32im(), &elf)?;
//! let summary = explorer.run_all()?;
//! assert_eq!(summary.paths, 2);
//! assert_eq!(summary.error_paths.len(), 1); // the exit(1) path
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod explore;
pub mod machine;
pub mod value;

pub use explore::{
    find_sym_input, ErrorPath, ExploreError, Explorer, ExplorerConfig, PathExecutor, PathOutcome,
    SpecExecutor, Summary,
};
pub use machine::{ExecError, StepResult, SymMachine, TrailEntry};
pub use value::{SymByte, SymWord};

/// Name of the symbol marking the symbolic input region in SUT binaries
/// (the harness replaces its bytes with fresh symbolic variables).
pub const SYM_INPUT_SYMBOL: &str = "__sym_input";

/// Syscall number of `exit` in the harness ABI.
pub const SYSCALL_EXIT: u32 = 93;
