//! The deterministic structurally-keyed solver warm start of the
//! parallel engine.
//!
//! Cache-off prescription replay ([`crate::parallel`]) pays twice per
//! flip query: it re-executes the parent input's path prefix to reproduce
//! the trail, and it bit-blasts that prefix into a brand-new solver.
//! Consecutive prescriptions from the same subtree — siblings under DFS,
//! affine pops under [`crate::CoverageGuided`] — replay prefixes that are
//! *structurally* identical even when their parent inputs differ. A
//! per-worker [`WarmCache`] therefore splits the shared work into two
//! caches over one shared [`TermManager`]:
//!
//! * the **trail cache** keys recorded trails by the parent's concrete
//!   input (the trail's witness values are input-dependent); a cached
//!   trail is re-executed only when a later query needs a *deeper*
//!   prefix than was recorded;
//! * the **context cache** keys retained
//!   [`binsym_smt::PrefixContext`]s by the **structural decision
//!   prefix** — the sequence of [`DecisionKey`]s: one per trail entry,
//!   `(branch-site pc, asserted direction)` for branches and
//!   `(site pc, concretization choice)` for address concretizations.
//!   The key is input-independent. Execution is deterministic, so
//!   two parents whose trails share a leading decision run derive the
//!   *same* path-condition terms for it (the shared term manager
//!   hash-conses them to identical handles), and one retained bit-blast
//!   serves them both: a query is routed to the resident entry sharing
//!   the longest leading run with its own key (ties to the most recently
//!   used entry), and the entry's key follows the last query served.
//!   Contexts are **lazily promoted** ([`PROMOTE_AFTER_QUERIES`]): the
//!   promotion counter lives on the structural entry, so sibling parents
//!   pool their queries toward promotion and the retained context's
//!   bookkeeping (op log, per-query scratch clone) taxes only regions
//!   with proven reuse.
//!
//! Both caches are bounded and LRU-evicted through an intrusive recency
//! list ([`Lru`]): touch, insert, and evict are all O(1) (the previous
//! per-insertion `min_by_key` scan was O(entries)).
//!
//! # Determinism
//!
//! The cache must be invisible in the results: merged parallel records
//! are byte-identical across worker counts, schedules, *and cache hit
//! patterns* — the cache affects wall time only, never models. Three
//! facts carry the argument:
//!
//! 1. Trail reuse is sound because execution is deterministic: the cached
//!    trail of input `I` is the trail any fresh replay of `I` would
//!    record (prefixes of deeper runs included).
//! 2. [`PrefixContext`] guarantees bit-identical models to a cold
//!    per-query solver *regardless of its retained state*: the retained
//!    prefix is pristine (never solved on), every flip runs in a scratch
//!    clone, and [`PrefixContext::solve_flip`] recomputes the true
//!    term-level shared run on every query — so even routing a query to
//!    a structurally unrelated context only costs time (a full rollback
//!    and re-blast), never correctness (see `binsym_smt::prefix` for the
//!    full argument). Structural matching is purely a search heuristic.
//! 3. Eviction only discards cached state; a rebuilt trail or context
//!    reproduces the evicted one's answers exactly (same pure function).
//!
//! Everything observable beyond timing — results, models, spawned
//! prescriptions — is therefore a pure function of the prescription, as
//! in cache-off mode; only the hit/miss counters surfaced through
//! [`crate::Observer::on_warm_query`] reveal the cache at all.

use std::collections::HashMap;

use binsym_smt::{PrefixContext, SatResult, Solver, Term, TermManager};

use crate::backend::StaticGate;
use crate::error::Error;
use crate::machine::TrailEntry;
use crate::metrics::{Instruments, Phase};
use crate::observe::{Observer, StaticAnalysisStats, WarmQueryStats};
use crate::prescribe::Flip;
use crate::session::PathExecutor;

/// Default bound on cached parent contexts per worker
/// ([`crate::SessionBuilder::warm_capacity`] overrides it). Unpromoted
/// entries are cheap (a term manager and a trail), so the default leans
/// toward covering a depth-first worker's ancestor chain.
pub const DEFAULT_WARM_CAPACITY: usize = 16;

/// Number of flip queries a parent must receive before it is promoted to
/// a retained [`PrefixContext`]. Promotion re-blasts the prefix into the
/// context and pays the context's bookkeeping (op log, per-query scratch
/// clone) from then on, so it must only happen where further siblings are
/// actually likely: the measured query-multiplicity distribution is
/// heavily skewed (most parents are queried once or twice, a few hubs
/// tens of times), and promoting on the *fourth* query captures the hubs
/// while never taxing the long tail — interleaved A/B timing across the
/// Table I shapes shows earlier promotion regressing the tail-heavy
/// programs and this threshold winning on all of them.
const PROMOTE_AFTER_QUERIES: u32 = 3;

/// Sentinel for "no slot" in the intrusive recency list.
const NIL: u32 = u32::MAX;

/// One element of a structural decision prefix — the input-independent
/// identity of one trail entry. Both kinds of trail decisions are keyed:
/// two prefixes only share a bit-blast when they agree on every branch
/// direction *and* every address-concretization choice, because a
/// concretization pin (`addr == c`, or a window constraint) is part of the
/// path condition exactly like a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum DecisionKey {
    /// A symbolic branch: site and the direction asserted on this path.
    Branch {
        /// Program counter of the branch site.
        pc: u32,
        /// Direction the path took.
        taken: bool,
    },
    /// An address concretization: site and the choice the policy pinned
    /// (the concrete address under the eq/min policies, the window base
    /// under the symbolic policy).
    Concretize {
        /// Program counter of the memory access.
        pc: u32,
        /// The concretization decision recorded in the trail.
        choice: u64,
    },
}

impl DecisionKey {
    /// The structural identity of one trail entry.
    fn of(entry: &TrailEntry) -> DecisionKey {
        match *entry {
            TrailEntry::Branch { taken, pc, .. } => DecisionKey::Branch { pc, taken },
            TrailEntry::Concretize { pc, choice, .. } => DecisionKey::Concretize { pc, choice },
        }
    }
}

/// Intrusive doubly-linked recency list over slab slot indices: touch,
/// insert, and least-recent eviction are all O(1), replacing the former
/// O(entries) `min_by_key` stamp scan per insertion. Eviction order is
/// exactly least-recently-used and thus deterministic for a given query
/// sequence.
#[derive(Debug)]
struct Lru {
    head: u32,
    tail: u32,
    prev: Vec<u32>,
    next: Vec<u32>,
}

impl Lru {
    fn new() -> Self {
        Lru {
            head: NIL,
            tail: NIL,
            prev: Vec::new(),
            next: Vec::new(),
        }
    }

    /// Links `slot` (currently unlinked) at the most-recent end.
    fn push_front(&mut self, slot: u32) {
        let n = slot as usize + 1;
        if self.prev.len() < n {
            self.prev.resize(n, NIL);
            self.next.resize(n, NIL);
        }
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        } else {
            self.tail = slot;
        }
        self.head = slot;
    }

    /// Unlinks `slot` (currently linked).
    fn unlink(&mut self, slot: u32) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = NIL;
    }

    /// Moves a linked `slot` to the most-recent end.
    fn touch(&mut self, slot: u32) {
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
    }

    /// Unlinks and returns the least-recently-used slot.
    fn pop_back(&mut self) -> Option<u32> {
        let t = self.tail;
        if t == NIL {
            return None;
        }
        self.unlink(t);
        Some(t)
    }
}

/// One cached parent input: the longest trail recorded for it so far.
/// Trails are input-keyed because their witness values depend on the
/// concrete input; the input-independent half (the bit-blasted prefix)
/// lives in the structurally-keyed [`CtxSlot`]s instead.
struct TrailSlot {
    /// The parent path's concrete input (the cache key).
    input: Vec<u8>,
    /// Longest trail recorded for this input so far.
    trail: Vec<TrailEntry>,
    /// Number of branch entries in `trail`.
    branches: usize,
}

/// The bounded, LRU-evicted parent-input → trail half of the cache.
struct TrailCache {
    capacity: usize,
    /// Slab of slots; `None` marks a freed slot awaiting reuse.
    slots: Vec<Option<TrailSlot>>,
    free: Vec<u32>,
    index: HashMap<Vec<u8>, u32>,
    lru: Lru,
}

impl TrailCache {
    fn new(capacity: usize) -> Self {
        TrailCache {
            capacity: capacity.max(1),
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            lru: Lru::new(),
        }
    }

    fn len(&self) -> usize {
        self.index.len()
    }

    /// Looks `input` up, marking the entry most-recently used on a hit.
    fn lookup(&mut self, input: &[u8]) -> Option<u32> {
        let slot = *self.index.get(input)?;
        self.lru.touch(slot);
        Some(slot)
    }

    fn slot_mut(&mut self, slot: u32) -> &mut TrailSlot {
        self.slots[slot as usize].as_mut().expect("live trail slot")
    }

    /// Inserts a fresh trail for `input` (not resident), evicting the
    /// least-recently-used entry at capacity. Returns the slot id.
    fn insert(&mut self, input: &[u8], trail: Vec<TrailEntry>, branches: usize) -> u32 {
        if self.index.len() >= self.capacity {
            let victim = self.lru.pop_back().expect("capacity >= 1");
            let old = self.slots[victim as usize].take().expect("linked slot");
            self.index.remove(&old.input);
            self.free.push(victim);
        }
        let fresh = TrailSlot {
            input: input.to_vec(),
            trail,
            branches,
        };
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(fresh);
                s
            }
            None => {
                self.slots.push(Some(fresh));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(input.to_vec(), slot);
        self.lru.push_front(slot);
        slot
    }
}

/// One structural region: a promotion counter and (once the region has
/// proven reuse) the retained solver context over its blasted prefix.
struct CtxSlot {
    /// Structural key: the [`DecisionKey`]s of the most recent query's
    /// prefix — every branch direction and every concretization choice.
    /// Adaptive — it follows the last query served, so the entry drifts
    /// with the worker's current subtree.
    key: Vec<DecisionKey>,
    /// Parent input of the most recent query (cross-parent accounting
    /// only; never used for matching).
    last_parent: Vec<u8>,
    /// The retained blasted-prefix solver context. **Lazy**: most
    /// regions see only a few queries, and a context's bookkeeping (op
    /// log, per-query scratch clone) would tax them for nothing — so
    /// early queries solve cold from the cached trail and only the
    /// [`PROMOTE_AFTER_QUERIES`]-exceeding query builds the context.
    ctx: Option<PrefixContext>,
    /// Flip queries routed to this region so far (pooled across sibling
    /// parents — the point of structural keying).
    queries: u32,
    /// Recency stamp for deterministic best-match tie-breaks.
    stamp: u64,
}

/// The bounded, LRU-evicted structural-prefix → context half of the
/// cache.
struct ContextCache {
    capacity: usize,
    slots: Vec<Option<CtxSlot>>,
    free: Vec<u32>,
    lru: Lru,
}

/// Length of the shared leading run of two structural keys.
fn shared_run(a: &[DecisionKey], b: &[DecisionKey]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl ContextCache {
    fn new(capacity: usize) -> Self {
        ContextCache {
            capacity: capacity.max(1),
            slots: Vec::new(),
            free: Vec::new(),
            lru: Lru::new(),
        }
    }

    fn len(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    fn slot_mut(&mut self, slot: u32) -> &mut CtxSlot {
        self.slots[slot as usize].as_mut().expect("live ctx slot")
    }

    /// Routes a query to the resident entry sharing the longest leading
    /// structural run with `key` (ties to the larger recency stamp —
    /// deterministic), opening a fresh entry when nothing shares at
    /// least one decision. The chosen entry's key is rewritten to `key`
    /// and its recency updated. Returns
    /// `(slot, created, cross_parent_reuse)`.
    fn lookup_or_insert(
        &mut self,
        key: &[DecisionKey],
        input: &[u8],
        tick: u64,
    ) -> (u32, bool, bool) {
        let mut best: Option<(usize, u64, u32)> = None;
        for (s, slot) in self.slots.iter().enumerate() {
            let Some(e) = slot else { continue };
            let share = shared_run(&e.key, key);
            if share == 0 && !(key.is_empty() && e.key.is_empty()) {
                continue;
            }
            if best.map_or(true, |(bs, bst, _)| (share, e.stamp) > (bs, bst)) {
                best = Some((share, e.stamp, s as u32));
            }
        }
        match best {
            Some((_, _, s)) => {
                let e = self.slots[s as usize].as_mut().expect("live ctx slot");
                let cross = e.last_parent != input;
                if cross {
                    e.last_parent.clear();
                    e.last_parent.extend_from_slice(input);
                }
                e.key.clear();
                e.key.extend_from_slice(key);
                e.stamp = tick;
                self.lru.touch(s);
                (s, false, cross)
            }
            None => {
                if self.len() >= self.capacity {
                    let victim = self.lru.pop_back().expect("capacity >= 1");
                    self.slots[victim as usize] = None;
                    self.free.push(victim);
                }
                let fresh = CtxSlot {
                    key: key.to_vec(),
                    last_parent: input.to_vec(),
                    ctx: None,
                    queries: 0,
                    stamp: tick,
                };
                let slot = match self.free.pop() {
                    Some(s) => {
                        self.slots[s as usize] = Some(fresh);
                        s
                    }
                    None => {
                        self.slots.push(Some(fresh));
                        (self.slots.len() - 1) as u32
                    }
                };
                self.lru.push_front(slot);
                (slot, true, false)
            }
        }
    }
}

/// The per-worker warm-start cache of a [`crate::ParallelSession`]: an
/// input-keyed [`TrailCache`] and a structurally-keyed [`ContextCache`]
/// over one shared term manager, each bounded to `capacity` entries with
/// its own O(1) LRU.
pub(crate) struct WarmCache {
    /// One shared term manager for every cached trail and context.
    /// Never reset while the cache lives — hash-consing is what makes
    /// structurally identical prefixes from *different parents* derive
    /// identical term handles, so one retained context can serve them
    /// all. (The former per-parent managers duplicated every shared
    /// prefix per entry; sharing roughly cancels the lifetime growth.)
    tm: TermManager,
    trails: TrailCache,
    contexts: ContextCache,
    tick: u64,
}

impl WarmCache {
    /// Creates an empty cache; each half is bounded to `capacity`.
    pub(crate) fn new(capacity: usize) -> Self {
        WarmCache {
            tm: TermManager::new(),
            trails: TrailCache::new(capacity),
            contexts: ContextCache::new(capacity),
            tick: 0,
        }
    }

    /// Discharges the flip query of one prescription through the cache:
    /// returns the query result, the witness input bytes on SAT, the
    /// per-query cache accounting (`None` when the static gate eliminated
    /// the query — no solver ran, so there is nothing to account), and the
    /// gate's screening stats (`None` when the gate is disabled).
    ///
    /// The gate screens *before* the promotion counter ticks: an
    /// eliminated query does not advance a parent toward context
    /// promotion — promotion affects wall time only, so this cannot
    /// change results.
    ///
    /// Results are bit-identical to the cache-off replay of the same
    /// prescription (see the [module docs](self)).
    ///
    /// # Errors
    /// The same errors cache-off replay produces (execution failure,
    /// fuel exhaustion, [`Error::ReplayDivergence`]), plus
    /// [`Error::WarmStart`] for broken solver invariants. A *corrupted
    /// cached context* (stale/foreign frame) is not an error here: the
    /// context is discarded and the query falls back to the cold solve,
    /// whose answer is bit-identical — so even that failure mode cannot
    /// change results.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    pub(crate) fn solve_flip(
        &mut self,
        executor: &mut dyn PathExecutor,
        input: &[u8],
        flip: Flip,
        fuel: u64,
        gate: StaticGate,
        instr: &Instruments,
        observer: &mut dyn Observer,
    ) -> Result<
        (
            SatResult,
            Option<Vec<u8>>,
            Option<WarmQueryStats>,
            Option<StaticAnalysisStats>,
        ),
        Error,
    > {
        self.tick += 1;
        let tick = self.tick;
        let pos = self.trails.lookup(input);
        let hit = pos.is_some();
        let mut replayed = false;
        let slot = match pos {
            Some(s) => {
                if self.trails.slot_mut(s).branches <= flip.ord {
                    // The cached trail is too shallow for this flip:
                    // execute deeper on the shared term manager
                    // (hash-consing reproduces the shared prefix's
                    // handles exactly).
                    let replay_started = instr.begin(Phase::Replay);
                    let trail = executor.execute_prefix(&mut self.tm, input, fuel, flip.ord + 1);
                    instr.finish(replay_started, Phase::Replay, observer);
                    let trail = trail?;
                    let e = self.trails.slot_mut(s);
                    e.branches = trail.iter().filter(|t| t.is_branch()).count();
                    e.trail = trail;
                    replayed = true;
                }
                s
            }
            None => {
                let replay_started = instr.begin(Phase::Replay);
                let trail = executor.execute_prefix(&mut self.tm, input, fuel, flip.ord + 1);
                instr.finish(replay_started, Phase::Replay, observer);
                let trail = trail?;
                replayed = true;
                let branches = trail.iter().filter(|t| t.is_branch()).count();
                self.trails.insert(input, trail, branches)
            }
        };
        let WarmCache {
            tm,
            trails,
            contexts,
            ..
        } = self;
        let trail = &trails.slot_mut(slot).trail;

        // Locate the prescribed branch with the shared divergence guards
        // — the single implementation cold replay uses too.
        let (i, cond) = flip.locate(trail)?;
        let flipped = if flip.taken { tm.not(cond) } else { cond };
        // Terms are interned in the same order whether or not the gate
        // screens the query (flipped first, then the prefix — the order
        // both solve paths below have always used), so screening cannot
        // perturb the shared manager's hash-consed handles.
        let prefix: Vec<Term> = trail[..i].iter().map(|e| e.path_term(tm)).collect();
        // The input-independent structural identity of this query's
        // prefix: the context cache routes on it. Every trail entry keys —
        // concretization choices included, since a pin is part of the path
        // condition exactly like a branch direction.
        let skey: Vec<DecisionKey> = trail[..i].iter().map(DecisionKey::of).collect();
        let mut sa_stats = None;
        let gate_started = instr.begin(Phase::Gate);
        let screened = gate.screen(tm, &prefix, flipped, input);
        instr.finish(gate_started, Phase::Gate, observer);
        if let Some(report) = screened {
            sa_stats = Some(report.stats);
            match report.verdict {
                Some((SatResult::Unsat, _)) => {
                    return Ok((SatResult::Unsat, None, None, sa_stats));
                }
                Some((SatResult::Sat, bytes)) => {
                    let bytes = bytes.expect("sat verdict carries witness bytes");
                    return Ok((SatResult::Sat, Some(bytes), None, sa_stats));
                }
                None => {}
            }
        }
        let (cslot, created, cross_parent) = contexts.lookup_or_insert(&skey, input, tick);
        let centry = contexts.slot_mut(cslot);
        let promote = centry.queries >= PROMOTE_AFTER_QUERIES;
        centry.queries += 1;
        let ctx = &mut centry.ctx;
        let mut warm_result = None;
        if ctx.is_some() || promote {
            // Proven reuse: solve through the retained prefix context
            // (built once the region exceeds the promotion gate). The
            // promoting query — the one that builds the context and blasts
            // the whole prefix into it — is timed as `WarmPromote`; later
            // queries riding the retained context are `WarmSolve`.
            let promoting = ctx.is_none();
            let c = ctx.get_or_insert_with(PrefixContext::new);
            let phase = if promoting {
                Phase::WarmPromote
            } else {
                Phase::WarmSolve
            };
            let warm_started = instr.begin(phase);
            let solved = c.solve_flip(tm, &prefix, flipped);
            let warm_nanos = instr.finish(warm_started, phase, observer);
            match solved {
                Ok(report) => {
                    if warm_started.is_some() {
                        instr.record_query(warm_nanos);
                    }
                    warm_result = Some((
                        report.result,
                        report.reused as u64,
                        report.blasted as u64,
                        c.model(tm),
                    ));
                }
                Err(_) => {
                    // A corrupted context (stale/foreign frame) must not
                    // change results: discard it and fall through to the
                    // cold solve, which answers bit-identically. The
                    // determinism invariant survives even the failure
                    // mode the typed errors exist for.
                    instr.instant("warm_rollback");
                    *ctx = None;
                }
            }
        }
        let (result, reused, blasted, model) = match warm_result {
            Some(r) => r,
            None => {
                // Unpromoted parent (or discarded context): cold solve
                // from the cached trail — the exact cache-off op sequence
                // minus the prefix re-execution, with none of a context's
                // bookkeeping (most parents are queried only once or
                // twice and would never amortize it).
                let blast_started = instr.begin(Phase::BitBlast);
                let mut solver = Solver::new();
                solver.push();
                for &t in &prefix {
                    solver.assert_term(tm, t);
                }
                solver.assert_term(tm, flipped);
                instr.finish(blast_started, Phase::BitBlast, observer);
                let solve_started = instr.begin(Phase::Solve);
                let r = solver.check_sat(tm, &[]);
                let solve_nanos = instr.finish(solve_started, Phase::Solve, observer);
                if solve_started.is_some() {
                    instr.record_query(solve_nanos);
                }
                (r, 0, i as u64, solver.model(tm))
            }
        };
        let stats = WarmQueryStats {
            result,
            cache_hit: hit,
            replay_skipped: !replayed,
            prefix_reused: reused,
            prefix_blasted: blasted,
            context_key_created: created,
            cross_parent_reuse: cross_parent,
        };
        if result != SatResult::Sat {
            return Ok((result, None, Some(stats), sa_stats));
        }
        let model = model.ok_or(Error::WarmStart {
            what: "satisfiable warm query produced no model",
        })?;
        let bytes = crate::prescribe::witness_bytes(&model, executor.input_len());
        Ok((result, Some(bytes), Some(stats), sa_stats))
    }

    /// Number of resident parent trails.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.trails.len()
    }

    /// Number of resident structural context entries.
    #[cfg(test)]
    pub(crate) fn context_len(&self) -> usize {
        self.contexts.len()
    }

    /// Parent inputs currently resident in the trail cache, least
    /// recently used first (test observability for the eviction order).
    #[cfg(test)]
    pub(crate) fn resident_inputs_lru_first(&self) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        let mut s = self.trails.lru.tail;
        while s != NIL {
            out.push(
                self.trails.slots[s as usize]
                    .as_ref()
                    .expect("linked slot")
                    .input
                    .clone(),
            );
            s = self.trails.lru.prev[s as usize];
        }
        out
    }
}

impl std::fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmCache")
            .field("trail_capacity", &self.trails.capacity)
            .field("trails_resident", &self.trails.len())
            .field("context_capacity", &self.contexts.capacity)
            .field("contexts_resident", &self.contexts.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{PathOutcome, SpecExecutor};
    use binsym_asm::Assembler;
    use binsym_isa::Spec;

    const THREE_COMPARES: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    lbu a1, 0(a0)
    bltu a1, a2, c1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
c3:
    li a0, 0
    li a7, 93
    ecall
"#;

    fn executor() -> SpecExecutor {
        let elf = Assembler::new()
            .assemble(THREE_COMPARES)
            .expect("assembles");
        SpecExecutor::new(Spec::rv32im(), &elf, None).expect("sym input")
    }

    /// Gate-off cache query: the oracle tests compare against a gate-free
    /// cold path, so every query is residual and carries warm stats.
    fn warm_solve(
        cache: &mut WarmCache,
        exec: &mut SpecExecutor,
        input: &[u8],
        flip: Flip,
    ) -> Result<(SatResult, Option<Vec<u8>>, WarmQueryStats), Error> {
        let (r, bytes, stats, _) = cache.solve_flip(
            exec,
            input,
            flip,
            10_000,
            StaticGate::disabled(),
            &Instruments::disabled(),
            &mut crate::observe::NullObserver,
        )?;
        Ok((
            r,
            bytes,
            stats.expect("gate disabled: every query is residual"),
        ))
    }

    /// Cache-off reference: the exact replay sequence of the cold worker
    /// path (fresh tm + fresh incremental backend per query). This is an
    /// *intentionally independent* re-implementation — it must not share
    /// code with the production paths it is the oracle for.
    fn cold_solve(
        executor: &mut SpecExecutor,
        input: &[u8],
        flip: Flip,
    ) -> (SatResult, Option<Vec<u8>>) {
        use crate::backend::{BitblastBackend, SolverBackend};
        use crate::session::PathExecutor as _;
        let mut tm = TermManager::new();
        let trail = executor
            .execute_prefix(&mut tm, input, 10_000, flip.ord + 1)
            .expect("replays");
        let mut ord = 0usize;
        let mut cut = None;
        for (i, entry) in trail.iter().enumerate() {
            if let TrailEntry::Branch { cond, taken, pc } = *entry {
                if ord == flip.ord {
                    cut = Some((i, cond, taken, pc));
                    break;
                }
                ord += 1;
            }
        }
        let (i, cond, taken, _) = cut.expect("branch exists");
        let mut backend = BitblastBackend::new();
        backend.push();
        for entry in &trail[..i] {
            let t = entry.path_term(&mut tm);
            backend.assert_term(&mut tm, t);
        }
        let flipped = if taken { tm.not(cond) } else { cond };
        backend.assert_term(&mut tm, flipped);
        let r = backend.check_sat(&mut tm);
        if r != SatResult::Sat {
            return (r, None);
        }
        let model = backend.model(&tm).expect("sat has model");
        let bytes = (0..executor.input_len())
            .map(|b| model.value(&format!("in{b}")).unwrap_or(0) as u8)
            .collect();
        (r, Some(bytes))
    }

    /// The parent trail's flips, as the engine would prescribe them.
    fn flips_of(executor: &mut SpecExecutor, input: &[u8]) -> Vec<Flip> {
        let mut tm = TermManager::new();
        let mut out = Vec::new();
        let outcome: PathOutcome = executor
            .execute_path(&mut tm, input, 10_000, &mut crate::observe::NullObserver)
            .expect("executes");
        for entry in &outcome.trail {
            if let TrailEntry::Branch { taken, pc, .. } = *entry {
                out.push(Flip {
                    ord: out.len(),
                    taken,
                    pc,
                });
            }
        }
        out
    }

    #[test]
    fn warm_answers_match_cold_replay_bit_for_bit() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        assert_eq!(flips.len(), 3);
        let mut cache = WarmCache::new(4);
        // Deepest-first (the DFS sibling order), then revisit ascending.
        for &ord in &[2usize, 1, 0, 1, 2] {
            let flip = flips[ord];
            let (r, bytes, stats) =
                warm_solve(&mut cache, &mut exec, &[0, 0, 0], flip).expect("solves");
            let (cold_r, cold_bytes) = cold_solve(&mut exec, &[0, 0, 0], flip);
            assert_eq!(r, cold_r, "ord {ord}");
            assert_eq!(bytes, cold_bytes, "ord {ord}: bit-identical witness");
            assert_eq!(stats.result, r);
        }
    }

    #[test]
    fn trail_and_context_reuse_is_reported() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        let mut cache = WarmCache::new(4);
        let (_, _, first) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[2]).expect("solves");
        assert!(!first.cache_hit, "first query builds the context");
        assert!(!first.replay_skipped, "first query executes the prefix");
        let (_, _, second) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
        assert!(second.cache_hit, "sibling reuses the cached trail");
        assert!(second.replay_skipped, "sibling skips the re-execution");
        // The PROMOTE_AFTER_QUERIES-exceeding query promotes the parent
        // to a retained context (the prefix is blasted into it); the one
        // after is pure context reuse.
        for _ in 2..=PROMOTE_AFTER_QUERIES {
            let (_, _, s) =
                warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
            assert_eq!(s.prefix_reused, 0, "unpromoted queries solve cold");
        }
        let (_, _, promoting) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
        assert!(promoting.cache_hit);
        let (_, _, reusing) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
        assert!(reusing.cache_hit);
        assert!(reusing.replay_skipped);
        assert!(reusing.prefix_reused >= promoting.prefix_reused);
        assert_eq!(reusing.prefix_blasted, 0, "same prefix: pure reuse");
    }

    #[test]
    fn lru_eviction_keeps_the_bound_and_answers_stay_correct() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        let mut cache = WarmCache::new(2);
        let inputs: [&[u8]; 3] = [&[0, 0, 0], &[200, 0, 0], &[0, 200, 0]];
        for input in inputs {
            let local = flips_of(&mut exec, input);
            let flip = local[0];
            let (r, bytes, _) = warm_solve(&mut cache, &mut exec, input, flip).expect("ok");
            let (cold_r, cold_bytes) = cold_solve(&mut exec, input, flip);
            assert_eq!(r, cold_r);
            assert_eq!(bytes, cold_bytes);
            assert!(cache.len() <= 2, "capacity bound holds");
        }
        // The first input was evicted; a revisit is a miss but still
        // bit-identical.
        let (r, bytes, stats) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[2]).expect("ok");
        assert!(!stats.cache_hit, "evicted entry rebuilt");
        let (cold_r, cold_bytes) = cold_solve(&mut exec, &[0, 0, 0], flips[2]);
        assert_eq!(r, cold_r);
        assert_eq!(bytes, cold_bytes);
    }

    #[test]
    fn lru_eviction_order_is_pinned_least_recent_first() {
        let mut exec = executor();
        let mut cache = WarmCache::new(2);
        let a: &[u8] = &[0, 0, 0];
        let b: &[u8] = &[200, 0, 0];
        let c: &[u8] = &[0, 200, 0];
        for input in [a, b] {
            let flip = flips_of(&mut exec, input)[0];
            warm_solve(&mut cache, &mut exec, input, flip).expect("ok");
        }
        // Touch `a` again: `b` becomes the least-recently-used entry.
        let fa = flips_of(&mut exec, a)[0];
        let (_, _, s) = warm_solve(&mut cache, &mut exec, a, fa).expect("ok");
        assert!(s.cache_hit);
        assert_eq!(
            cache.resident_inputs_lru_first(),
            vec![b.to_vec(), a.to_vec()]
        );
        // Inserting `c` at capacity must evict exactly `b`.
        let fc = flips_of(&mut exec, c)[0];
        warm_solve(&mut cache, &mut exec, c, fc).expect("ok");
        assert_eq!(
            cache.resident_inputs_lru_first(),
            vec![a.to_vec(), c.to_vec()]
        );
        let (_, _, sa) = warm_solve(&mut cache, &mut exec, a, fa).expect("ok");
        assert!(sa.cache_hit, "a survived the eviction");
        let fb = flips_of(&mut exec, b)[0];
        let (_, _, sb) = warm_solve(&mut cache, &mut exec, b, fb).expect("ok");
        assert!(!sb.cache_hit, "b was the deterministic victim");
    }

    #[test]
    fn sibling_parents_share_one_structural_context() {
        let mut exec = executor();
        // Two different parent inputs with the *same* decision prefix:
        // both are < 100 at every compare, so their trails are
        // structurally identical while their witness bytes differ.
        let a: &[u8] = &[0, 0, 0];
        let b: &[u8] = &[1, 1, 1];
        let fa = flips_of(&mut exec, a)[2];
        let fb = flips_of(&mut exec, b)[2];
        let mut cache = WarmCache::new(4);
        let (_, _, first) = warm_solve(&mut cache, &mut exec, a, fa).expect("ok");
        assert!(first.context_key_created, "first query opens the region");
        assert!(!first.cross_parent_reuse);
        // Pool queries on the region through parent `a` until promotion.
        for _ in 1..=PROMOTE_AFTER_QUERIES {
            warm_solve(&mut cache, &mut exec, a, fa).expect("ok");
        }
        assert_eq!(cache.context_len(), 1, "one structural region");
        // Parent `b` rides the context parent `a` promoted: the full
        // prefix is served from the retained bit-blast and the answer is
        // still bit-identical to a cold replay of `b`.
        let (r, bytes, s) = warm_solve(&mut cache, &mut exec, b, fb).expect("ok");
        assert!(!s.context_key_created, "same structural key: no new region");
        assert!(s.cross_parent_reuse, "a context built by `a` served `b`");
        assert!(s.prefix_reused > 0, "cross-parent bit-blast reuse");
        assert_eq!(s.prefix_blasted, 0, "identical prefix: nothing re-blasted");
        assert_eq!(cache.context_len(), 1, "still one region");
        let (cold_r, cold_bytes) = cold_solve(&mut exec, b, fb);
        assert_eq!(r, cold_r);
        assert_eq!(bytes, cold_bytes, "bit-identical witness across parents");
        // A structurally different parent (first compare falls the other
        // way) opens its own region instead of riding this one.
        let c: &[u8] = &[200, 0, 0];
        let fc = flips_of(&mut exec, c)[1];
        let (_, _, sc) = warm_solve(&mut cache, &mut exec, c, fc).expect("ok");
        assert!(sc.context_key_created, "divergent prefix: new region");
        assert_eq!(cache.context_len(), 2);
    }

    #[test]
    fn divergent_prescriptions_error_like_cold_replay() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        let mut cache = WarmCache::new(4);
        // Too-deep ordinal: fewer branches than prescribed.
        let bogus = Flip {
            ord: 17,
            taken: true,
            pc: 0,
        };
        assert!(matches!(
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], bogus),
            Err(Error::ReplayDivergence { .. })
        ));
        // Wrong direction.
        let wrong_dir = Flip {
            taken: !flips[0].taken,
            ..flips[0]
        };
        assert!(matches!(
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], wrong_dir),
            Err(Error::ReplayDivergence { .. })
        ));
        // Wrong site.
        let wrong_pc = Flip {
            pc: flips[0].pc ^ 4,
            ..flips[0]
        };
        assert!(matches!(
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], wrong_pc),
            Err(Error::ReplayDivergence { .. })
        ));
    }

    #[test]
    fn gate_eliminates_reencountered_flip_through_the_cache() {
        // The same comparison is branched on twice: flipping the second
        // occurrence contradicts the first (which sits in the prefix), so
        // the static gate decides it UNSAT without any solver.
        const SAME_COND_TWICE: &str = r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a2, 100
    bltu a1, a2, c1
c1: bltu a1, a2, c2
c2:
    li a0, 0
    li a7, 93
    ecall
"#;
        let elf = Assembler::new().assemble(SAME_COND_TWICE).expect("asm");
        let mut exec = SpecExecutor::new(Spec::rv32im(), &elf, None).expect("sym input");
        let flips = flips_of(&mut exec, &[0]);
        assert_eq!(flips.len(), 2);
        let mut cache = WarmCache::new(4);
        let gate = StaticGate::new(true, true); // shadow-checked
        let (r, bytes, warm, sa) = cache
            .solve_flip(
                &mut exec,
                &[0],
                flips[1],
                10_000,
                gate,
                &Instruments::disabled(),
                &mut crate::observe::NullObserver,
            )
            .expect("solves");
        assert_eq!(r, SatResult::Unsat);
        assert!(bytes.is_none());
        assert!(warm.is_none(), "eliminated query carries no warm stats");
        let sa = sa.expect("gate screened the query");
        assert_eq!(sa.eliminated, Some(SatResult::Unsat));
        // The first flip is residual: the gate screens it but the solver
        // decides it, bit-identically to a gate-free cold replay.
        let (r0, b0, warm0, sa0) = cache
            .solve_flip(
                &mut exec,
                &[0],
                flips[0],
                10_000,
                gate,
                &Instruments::disabled(),
                &mut crate::observe::NullObserver,
            )
            .expect("solves");
        let (cold_r, cold_b) = cold_solve(&mut exec, &[0], flips[0]);
        assert_eq!(r0, cold_r);
        assert_eq!(b0, cold_b);
        assert!(warm0.is_some(), "residual query carries warm stats");
        assert_eq!(sa0.expect("screened").eliminated, None);
    }
}
