//! The deterministic prefix-keyed solver warm start of the parallel
//! engine.
//!
//! Cache-off prescription replay ([`crate::parallel`]) pays twice per
//! flip query: it re-executes the parent input's path prefix to reproduce
//! the trail, and it bit-blasts that prefix into a brand-new solver.
//! Consecutive prescriptions from the same subtree — siblings under DFS,
//! affine pops under [`crate::CoverageGuided`] — replay the *identical*
//! parent prefix. A per-worker [`WarmCache`] keys that shared work by the
//! parent's concrete input:
//!
//! * the **trail** of the parent prefix is executed once per parent and
//!   served from the cache afterwards (re-executed only when a later
//!   query needs a *deeper* prefix than was recorded);
//! * the **bit-blast** of the shared prefix lives in a
//!   [`binsym_smt::PrefixContext`], which detects the longest shared
//!   leading run between consecutive queries (the `(parent input, prefix
//!   branch ordinal)` key) and solves each flip in a disposable frame on
//!   top — exactly as the sequential incremental engine layers flip
//!   queries over its assertion stack. Contexts are **lazily promoted**
//!   ([`PROMOTE_AFTER_QUERIES`]): most parents are queried only once or
//!   twice (a path spawns one pending flip on average), so early queries
//!   on a parent solve cold from the cached trail and only a
//!   demonstrated hub builds the retained context — the context's
//!   bookkeeping taxes only parents with proven reuse.
//!
//! # Determinism
//!
//! The cache must be invisible in the results: merged parallel records
//! are byte-identical across worker counts, schedules, *and cache hit
//! patterns* — the cache affects wall time only, never models. Three
//! facts carry the argument:
//!
//! 1. Trail reuse is sound because execution is deterministic: the cached
//!    trail of input `I` is the trail any fresh replay of `I` would
//!    record (prefixes of deeper runs included).
//! 2. [`PrefixContext`] guarantees bit-identical models to a cold
//!    per-query solver: its retained prefix state is pristine (never
//!    solved on) and every flip runs in a scratch clone, so learnt
//!    clauses and heuristic state from one query can never steer another
//!    (see `binsym_smt::prefix` for the full argument).
//! 3. Eviction (bounded LRU) only discards contexts; a rebuilt context
//!    reproduces the evicted one's answers exactly (same pure function).
//!
//! Everything observable beyond timing — results, models, spawned
//! prescriptions — is therefore a pure function of the prescription, as
//! in cache-off mode; only the hit/miss counters surfaced through
//! [`crate::Observer::on_warm_query`] reveal the cache at all.

use binsym_smt::{PrefixContext, SatResult, Solver, Term, TermManager};

use crate::backend::StaticGate;
use crate::error::Error;
use crate::machine::TrailEntry;
use crate::metrics::{Instruments, Phase};
use crate::observe::{Observer, StaticAnalysisStats, WarmQueryStats};
use crate::prescribe::Flip;
use crate::session::PathExecutor;

/// Default bound on cached parent contexts per worker
/// ([`crate::SessionBuilder::warm_capacity`] overrides it). Unpromoted
/// entries are cheap (a term manager and a trail), so the default leans
/// toward covering a depth-first worker's ancestor chain.
pub const DEFAULT_WARM_CAPACITY: usize = 16;

/// Number of flip queries a parent must receive before it is promoted to
/// a retained [`PrefixContext`]. Promotion re-blasts the prefix into the
/// context and pays the context's bookkeeping (op log, per-query scratch
/// clone) from then on, so it must only happen where further siblings are
/// actually likely: the measured query-multiplicity distribution is
/// heavily skewed (most parents are queried once or twice, a few hubs
/// tens of times), and promoting on the *fourth* query captures the hubs
/// while never taxing the long tail — interleaved A/B timing across the
/// Table I shapes shows earlier promotion regressing the tail-heavy
/// programs and this threshold winning on all of them.
const PROMOTE_AFTER_QUERIES: u32 = 3;

/// One cached parent input: its term manager, recorded trail, and (once
/// the parent has proven reuse) the retained solver context over the
/// blasted prefix.
struct WarmEntry {
    /// The parent path's concrete input (the cache key).
    input: Vec<u8>,
    /// Term manager owning every handle in `trail` and `ctx`. Never
    /// reset while the entry lives — hash-consing keeps re-derived
    /// prefix terms handle-stable across queries.
    tm: TermManager,
    /// Longest trail recorded for this input so far.
    trail: Vec<TrailEntry>,
    /// Number of branch entries in `trail`.
    branches: usize,
    /// The retained blasted-prefix solver context. **Lazy**: most parents
    /// are queried only a few times, and a context's bookkeeping (op log,
    /// per-query scratch clone) would tax them for nothing — so early
    /// queries on a parent solve cold from the cached trail, and only the
    /// [`PROMOTE_AFTER_QUERIES`]-exceeding query promotes the parent to a
    /// retained context. The trail reuse (skipping the prefix
    /// re-execution) applies from the first hit either way.
    ctx: Option<PrefixContext>,
    /// Flip queries discharged against this parent so far.
    queries: u32,
    /// LRU stamp (larger = more recently used).
    stamp: u64,
}

/// A bounded, LRU-evicted map from parent input to [`WarmEntry`], owned
/// by one worker thread of a [`crate::ParallelSession`].
pub(crate) struct WarmCache {
    capacity: usize,
    entries: Vec<WarmEntry>,
    tick: u64,
}

impl WarmCache {
    /// Creates an empty cache bounded to `capacity` parent contexts.
    pub(crate) fn new(capacity: usize) -> Self {
        WarmCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
            tick: 0,
        }
    }

    /// Discharges the flip query of one prescription through the cache:
    /// returns the query result, the witness input bytes on SAT, the
    /// per-query cache accounting (`None` when the static gate eliminated
    /// the query — no solver ran, so there is nothing to account), and the
    /// gate's screening stats (`None` when the gate is disabled).
    ///
    /// The gate screens *before* the promotion counter ticks: an
    /// eliminated query does not advance a parent toward context
    /// promotion — promotion affects wall time only, so this cannot
    /// change results.
    ///
    /// Results are bit-identical to the cache-off replay of the same
    /// prescription (see the [module docs](self)).
    ///
    /// # Errors
    /// The same errors cache-off replay produces (execution failure,
    /// fuel exhaustion, [`Error::ReplayDivergence`]), plus
    /// [`Error::WarmStart`] for broken solver invariants. A *corrupted
    /// cached context* (stale/foreign frame) is not an error here: the
    /// context is discarded and the query falls back to the cold solve,
    /// whose answer is bit-identical — so even that failure mode cannot
    /// change results.
    #[allow(clippy::type_complexity, clippy::too_many_arguments)]
    pub(crate) fn solve_flip(
        &mut self,
        executor: &mut dyn PathExecutor,
        input: &[u8],
        flip: Flip,
        fuel: u64,
        gate: StaticGate,
        instr: &Instruments,
        observer: &mut dyn Observer,
    ) -> Result<
        (
            SatResult,
            Option<Vec<u8>>,
            Option<WarmQueryStats>,
            Option<StaticAnalysisStats>,
        ),
        Error,
    > {
        self.tick += 1;
        let tick = self.tick;
        let pos = self.entries.iter().position(|e| e.input == input);
        let hit = pos.is_some();
        let mut replayed = false;
        let idx = match pos {
            Some(i) => {
                let e = &mut self.entries[i];
                e.stamp = tick;
                if e.branches <= flip.ord {
                    // The cached trail is too shallow for this flip:
                    // execute deeper on the entry's own term manager
                    // (hash-consing reproduces the shared prefix's
                    // handles exactly).
                    let replay_started = instr.begin(Phase::Replay);
                    let trail = executor.execute_prefix(&mut e.tm, input, fuel, flip.ord + 1);
                    instr.finish(replay_started, Phase::Replay, observer);
                    let trail = trail?;
                    e.branches = trail.iter().filter(|t| t.is_branch()).count();
                    e.trail = trail;
                    replayed = true;
                }
                i
            }
            None => {
                let mut tm = TermManager::new();
                let replay_started = instr.begin(Phase::Replay);
                let trail = executor.execute_prefix(&mut tm, input, fuel, flip.ord + 1);
                instr.finish(replay_started, Phase::Replay, observer);
                let trail = trail?;
                replayed = true;
                let branches = trail.iter().filter(|t| t.is_branch()).count();
                if self.entries.len() >= self.capacity {
                    let lru = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.stamp)
                        .map(|(i, _)| i)
                        .expect("capacity >= 1 implies a resident entry");
                    self.entries.swap_remove(lru);
                }
                self.entries.push(WarmEntry {
                    input: input.to_vec(),
                    tm,
                    trail,
                    branches,
                    ctx: None,
                    queries: 0,
                    stamp: tick,
                });
                self.entries.len() - 1
            }
        };
        let WarmEntry {
            tm,
            trail,
            ctx,
            queries,
            ..
        } = &mut self.entries[idx];

        // Locate the prescribed branch with the shared divergence guards
        // — the single implementation cold replay uses too.
        let (i, cond) = flip.locate(trail)?;
        let flipped = if flip.taken { tm.not(cond) } else { cond };
        // Terms are interned in the same order whether or not the gate
        // screens the query (flipped first, then the prefix — the order
        // both solve paths below have always used), so screening cannot
        // perturb the entry's hash-consed handles.
        let prefix: Vec<Term> = trail[..i].iter().map(|e| e.path_term(tm)).collect();
        let mut sa_stats = None;
        let gate_started = instr.begin(Phase::Gate);
        let screened = gate.screen(tm, &prefix, flipped, input);
        instr.finish(gate_started, Phase::Gate, observer);
        if let Some(report) = screened {
            sa_stats = Some(report.stats);
            match report.verdict {
                Some((SatResult::Unsat, _)) => {
                    return Ok((SatResult::Unsat, None, None, sa_stats));
                }
                Some((SatResult::Sat, bytes)) => {
                    let bytes = bytes.expect("sat verdict carries witness bytes");
                    return Ok((SatResult::Sat, Some(bytes), None, sa_stats));
                }
                None => {}
            }
        }
        let promote = *queries >= PROMOTE_AFTER_QUERIES;
        *queries += 1;
        let mut warm_result = None;
        if ctx.is_some() || promote {
            // Proven reuse: solve through the retained prefix context
            // (built once the parent exceeds the promotion gate). The
            // promoting query — the one that builds the context and blasts
            // the whole prefix into it — is timed as `WarmPromote`; later
            // queries riding the retained context are `WarmSolve`.
            let promoting = ctx.is_none();
            let c = ctx.get_or_insert_with(PrefixContext::new);
            let phase = if promoting {
                Phase::WarmPromote
            } else {
                Phase::WarmSolve
            };
            let warm_started = instr.begin(phase);
            let solved = c.solve_flip(tm, &prefix, flipped);
            let warm_nanos = instr.finish(warm_started, phase, observer);
            match solved {
                Ok(report) => {
                    if warm_started.is_some() {
                        instr.record_query(warm_nanos);
                    }
                    warm_result = Some((
                        report.result,
                        report.reused as u64,
                        report.blasted as u64,
                        c.model(tm),
                    ));
                }
                Err(_) => {
                    // A corrupted context (stale/foreign frame) must not
                    // change results: discard it and fall through to the
                    // cold solve, which answers bit-identically. The
                    // determinism invariant survives even the failure
                    // mode the typed errors exist for.
                    instr.instant("warm_rollback");
                    *ctx = None;
                }
            }
        }
        let (result, reused, blasted, model) = match warm_result {
            Some(r) => r,
            None => {
                // Unpromoted parent (or discarded context): cold solve
                // from the cached trail — the exact cache-off op sequence
                // minus the prefix re-execution, with none of a context's
                // bookkeeping (most parents are queried only once or
                // twice and would never amortize it).
                let blast_started = instr.begin(Phase::BitBlast);
                let mut solver = Solver::new();
                solver.push();
                for &t in &prefix {
                    solver.assert_term(tm, t);
                }
                solver.assert_term(tm, flipped);
                instr.finish(blast_started, Phase::BitBlast, observer);
                let solve_started = instr.begin(Phase::Solve);
                let r = solver.check_sat(tm, &[]);
                let solve_nanos = instr.finish(solve_started, Phase::Solve, observer);
                if solve_started.is_some() {
                    instr.record_query(solve_nanos);
                }
                (r, 0, i as u64, solver.model(tm))
            }
        };
        let stats = WarmQueryStats {
            result,
            cache_hit: hit,
            replay_skipped: !replayed,
            prefix_reused: reused,
            prefix_blasted: blasted,
        };
        if result != SatResult::Sat {
            return Ok((result, None, Some(stats), sa_stats));
        }
        let model = model.ok_or(Error::WarmStart {
            what: "satisfiable warm query produced no model",
        })?;
        let bytes = crate::prescribe::witness_bytes(&model, executor.input_len());
        Ok((result, Some(bytes), Some(stats), sa_stats))
    }

    /// Number of resident parent contexts.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }
}

impl std::fmt::Debug for WarmCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WarmCache")
            .field("capacity", &self.capacity)
            .field("resident", &self.entries.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{PathOutcome, SpecExecutor};
    use binsym_asm::Assembler;
    use binsym_isa::Spec;

    const THREE_COMPARES: &str = r#"
        .data
__sym_input: .byte 0, 0, 0
        .text
_start:
    la a0, __sym_input
    li a2, 100
    lbu a1, 0(a0)
    bltu a1, a2, c1
c1: lbu a1, 1(a0)
    bltu a1, a2, c2
c2: lbu a1, 2(a0)
    bltu a1, a2, c3
c3:
    li a0, 0
    li a7, 93
    ecall
"#;

    fn executor() -> SpecExecutor {
        let elf = Assembler::new()
            .assemble(THREE_COMPARES)
            .expect("assembles");
        SpecExecutor::new(Spec::rv32im(), &elf, None).expect("sym input")
    }

    /// Gate-off cache query: the oracle tests compare against a gate-free
    /// cold path, so every query is residual and carries warm stats.
    fn warm_solve(
        cache: &mut WarmCache,
        exec: &mut SpecExecutor,
        input: &[u8],
        flip: Flip,
    ) -> Result<(SatResult, Option<Vec<u8>>, WarmQueryStats), Error> {
        let (r, bytes, stats, _) = cache.solve_flip(
            exec,
            input,
            flip,
            10_000,
            StaticGate::disabled(),
            &Instruments::disabled(),
            &mut crate::observe::NullObserver,
        )?;
        Ok((
            r,
            bytes,
            stats.expect("gate disabled: every query is residual"),
        ))
    }

    /// Cache-off reference: the exact replay sequence of the cold worker
    /// path (fresh tm + fresh incremental backend per query). This is an
    /// *intentionally independent* re-implementation — it must not share
    /// code with the production paths it is the oracle for.
    fn cold_solve(
        executor: &mut SpecExecutor,
        input: &[u8],
        flip: Flip,
    ) -> (SatResult, Option<Vec<u8>>) {
        use crate::backend::{BitblastBackend, SolverBackend};
        use crate::session::PathExecutor as _;
        let mut tm = TermManager::new();
        let trail = executor
            .execute_prefix(&mut tm, input, 10_000, flip.ord + 1)
            .expect("replays");
        let mut ord = 0usize;
        let mut cut = None;
        for (i, entry) in trail.iter().enumerate() {
            if let TrailEntry::Branch { cond, taken, pc } = *entry {
                if ord == flip.ord {
                    cut = Some((i, cond, taken, pc));
                    break;
                }
                ord += 1;
            }
        }
        let (i, cond, taken, _) = cut.expect("branch exists");
        let mut backend = BitblastBackend::new();
        backend.push();
        for entry in &trail[..i] {
            let t = entry.path_term(&mut tm);
            backend.assert_term(&mut tm, t);
        }
        let flipped = if taken { tm.not(cond) } else { cond };
        backend.assert_term(&mut tm, flipped);
        let r = backend.check_sat(&mut tm);
        if r != SatResult::Sat {
            return (r, None);
        }
        let model = backend.model(&tm).expect("sat has model");
        let bytes = (0..executor.input_len())
            .map(|b| model.value(&format!("in{b}")).unwrap_or(0) as u8)
            .collect();
        (r, Some(bytes))
    }

    /// The parent trail's flips, as the engine would prescribe them.
    fn flips_of(executor: &mut SpecExecutor, input: &[u8]) -> Vec<Flip> {
        let mut tm = TermManager::new();
        let mut out = Vec::new();
        let outcome: PathOutcome = executor
            .execute_path(&mut tm, input, 10_000, &mut crate::observe::NullObserver)
            .expect("executes");
        for entry in &outcome.trail {
            if let TrailEntry::Branch { taken, pc, .. } = *entry {
                out.push(Flip {
                    ord: out.len(),
                    taken,
                    pc,
                });
            }
        }
        out
    }

    #[test]
    fn warm_answers_match_cold_replay_bit_for_bit() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        assert_eq!(flips.len(), 3);
        let mut cache = WarmCache::new(4);
        // Deepest-first (the DFS sibling order), then revisit ascending.
        for &ord in &[2usize, 1, 0, 1, 2] {
            let flip = flips[ord];
            let (r, bytes, stats) =
                warm_solve(&mut cache, &mut exec, &[0, 0, 0], flip).expect("solves");
            let (cold_r, cold_bytes) = cold_solve(&mut exec, &[0, 0, 0], flip);
            assert_eq!(r, cold_r, "ord {ord}");
            assert_eq!(bytes, cold_bytes, "ord {ord}: bit-identical witness");
            assert_eq!(stats.result, r);
        }
    }

    #[test]
    fn trail_and_context_reuse_is_reported() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        let mut cache = WarmCache::new(4);
        let (_, _, first) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[2]).expect("solves");
        assert!(!first.cache_hit, "first query builds the context");
        assert!(!first.replay_skipped, "first query executes the prefix");
        let (_, _, second) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
        assert!(second.cache_hit, "sibling reuses the cached trail");
        assert!(second.replay_skipped, "sibling skips the re-execution");
        // The PROMOTE_AFTER_QUERIES-exceeding query promotes the parent
        // to a retained context (the prefix is blasted into it); the one
        // after is pure context reuse.
        for _ in 2..=PROMOTE_AFTER_QUERIES {
            let (_, _, s) =
                warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
            assert_eq!(s.prefix_reused, 0, "unpromoted queries solve cold");
        }
        let (_, _, promoting) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
        assert!(promoting.cache_hit);
        let (_, _, reusing) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[1]).expect("solves");
        assert!(reusing.cache_hit);
        assert!(reusing.replay_skipped);
        assert!(reusing.prefix_reused >= promoting.prefix_reused);
        assert_eq!(reusing.prefix_blasted, 0, "same prefix: pure reuse");
    }

    #[test]
    fn lru_eviction_keeps_the_bound_and_answers_stay_correct() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        let mut cache = WarmCache::new(2);
        let inputs: [&[u8]; 3] = [&[0, 0, 0], &[200, 0, 0], &[0, 200, 0]];
        for input in inputs {
            let local = flips_of(&mut exec, input);
            let flip = local[0];
            let (r, bytes, _) = warm_solve(&mut cache, &mut exec, input, flip).expect("ok");
            let (cold_r, cold_bytes) = cold_solve(&mut exec, input, flip);
            assert_eq!(r, cold_r);
            assert_eq!(bytes, cold_bytes);
            assert!(cache.len() <= 2, "capacity bound holds");
        }
        // The first input was evicted; a revisit is a miss but still
        // bit-identical.
        let (r, bytes, stats) =
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], flips[2]).expect("ok");
        assert!(!stats.cache_hit, "evicted entry rebuilt");
        let (cold_r, cold_bytes) = cold_solve(&mut exec, &[0, 0, 0], flips[2]);
        assert_eq!(r, cold_r);
        assert_eq!(bytes, cold_bytes);
    }

    #[test]
    fn divergent_prescriptions_error_like_cold_replay() {
        let mut exec = executor();
        let flips = flips_of(&mut exec, &[0, 0, 0]);
        let mut cache = WarmCache::new(4);
        // Too-deep ordinal: fewer branches than prescribed.
        let bogus = Flip {
            ord: 17,
            taken: true,
            pc: 0,
        };
        assert!(matches!(
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], bogus),
            Err(Error::ReplayDivergence { .. })
        ));
        // Wrong direction.
        let wrong_dir = Flip {
            taken: !flips[0].taken,
            ..flips[0]
        };
        assert!(matches!(
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], wrong_dir),
            Err(Error::ReplayDivergence { .. })
        ));
        // Wrong site.
        let wrong_pc = Flip {
            pc: flips[0].pc ^ 4,
            ..flips[0]
        };
        assert!(matches!(
            warm_solve(&mut cache, &mut exec, &[0, 0, 0], wrong_pc),
            Err(Error::ReplayDivergence { .. })
        ));
    }

    #[test]
    fn gate_eliminates_reencountered_flip_through_the_cache() {
        // The same comparison is branched on twice: flipping the second
        // occurrence contradicts the first (which sits in the prefix), so
        // the static gate decides it UNSAT without any solver.
        const SAME_COND_TWICE: &str = r#"
        .data
__sym_input: .byte 0
        .text
_start:
    la a0, __sym_input
    lbu a1, 0(a0)
    li a2, 100
    bltu a1, a2, c1
c1: bltu a1, a2, c2
c2:
    li a0, 0
    li a7, 93
    ecall
"#;
        let elf = Assembler::new().assemble(SAME_COND_TWICE).expect("asm");
        let mut exec = SpecExecutor::new(Spec::rv32im(), &elf, None).expect("sym input");
        let flips = flips_of(&mut exec, &[0]);
        assert_eq!(flips.len(), 2);
        let mut cache = WarmCache::new(4);
        let gate = StaticGate::new(true, true); // shadow-checked
        let (r, bytes, warm, sa) = cache
            .solve_flip(
                &mut exec,
                &[0],
                flips[1],
                10_000,
                gate,
                &Instruments::disabled(),
                &mut crate::observe::NullObserver,
            )
            .expect("solves");
        assert_eq!(r, SatResult::Unsat);
        assert!(bytes.is_none());
        assert!(warm.is_none(), "eliminated query carries no warm stats");
        let sa = sa.expect("gate screened the query");
        assert_eq!(sa.eliminated, Some(SatResult::Unsat));
        // The first flip is residual: the gate screens it but the solver
        // decides it, bit-identically to a gate-free cold replay.
        let (r0, b0, warm0, sa0) = cache
            .solve_flip(
                &mut exec,
                &[0],
                flips[0],
                10_000,
                gate,
                &Instruments::disabled(),
                &mut crate::observe::NullObserver,
            )
            .expect("solves");
        let (cold_r, cold_b) = cold_solve(&mut exec, &[0], flips[0]);
        assert_eq!(r0, cold_r);
        assert_eq!(b0, cold_b);
        assert!(warm0.is_some(), "residual query carries warm stats");
        assert_eq!(sa0.expect("screened").eliminated, None);
    }
}
