//! `binsym-elf` — a minimal ELF32 (little-endian, RISC-V) reader and writer.
//!
//! The paper's BinSym takes RISC-V binary code *in the ELF format* as input.
//! No RISC-V cross-toolchain exists in this environment, so this crate
//! provides both directions: the in-repo assembler (`binsym-asm`) emits ELF
//! executables through [`ElfFile::to_bytes`], and every engine loads them
//! back through [`ElfFile::parse`] — the engines therefore exercise the same
//! binary-input code path as the paper's tooling.
//!
//! Supported surface: `ET_EXEC` files with `PT_LOAD` program headers and an
//! optional symbol table (`.symtab`/`.strtab`), which is everything the
//! loader, the symbolic engines, and the test harness need.
//!
//! # Example
//! ```
//! use binsym_elf::{ElfFile, Segment, Symbol, PF_R, PF_X};
//!
//! let mut elf = ElfFile::new(0x1000);
//! elf.segments.push(Segment {
//!     vaddr: 0x1000,
//!     data: vec![0x13, 0x00, 0x00, 0x00], // nop
//!     flags: PF_R | PF_X,
//! });
//! elf.symbols.push(Symbol { name: "_start".into(), value: 0x1000, size: 4 });
//! let bytes = elf.to_bytes();
//! let back = ElfFile::parse(&bytes)?;
//! assert_eq!(back.entry, 0x1000);
//! assert_eq!(back.symbol("_start").unwrap().value, 0x1000);
//! # Ok::<(), binsym_elf::ElfError>(())
//! ```

#![warn(missing_docs)]

use std::fmt;

/// Program-header flag: executable segment.
pub const PF_X: u32 = 1;
/// Program-header flag: writable segment.
pub const PF_W: u32 = 2;
/// Program-header flag: readable segment.
pub const PF_R: u32 = 4;

/// ELF machine number for RISC-V.
pub const EM_RISCV: u16 = 243;

const EI_NIDENT: usize = 16;
const ET_EXEC: u16 = 2;
const PT_LOAD: u32 = 1;
const SHT_SYMTAB: u32 = 2;
const SHT_STRTAB: u32 = 3;
const SHT_PROGBITS: u32 = 1;

/// A loadable segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Virtual load address.
    pub vaddr: u32,
    /// Segment contents (filesz == memsz; zero-fill is made explicit by the
    /// producer).
    pub data: Vec<u8>,
    /// `PF_*` permission flags.
    pub flags: u32,
}

/// A symbol-table entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Symbol {
    /// Symbol name.
    pub name: String,
    /// Symbol value (address).
    pub value: u32,
    /// Symbol size in bytes (0 when unknown).
    pub size: u32,
}

/// An ELF32 executable image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ElfFile {
    /// Entry-point address.
    pub entry: u32,
    /// Loadable segments.
    pub segments: Vec<Segment>,
    /// Symbols (global, function/object distinction is not tracked).
    pub symbols: Vec<Symbol>,
}

/// Error produced by [`ElfFile::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ElfError {
    /// The file is too short or a header points outside the file.
    Truncated {
        /// What was being read.
        context: &'static str,
    },
    /// Magic number / class / endianness mismatch.
    BadMagic,
    /// The file is not an executable for 32-bit little-endian RISC-V.
    Unsupported {
        /// Explanation.
        what: String,
    },
}

impl fmt::Display for ElfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElfError::Truncated { context } => write!(f, "truncated ELF while reading {context}"),
            ElfError::BadMagic => write!(f, "not an ELF32 little-endian file"),
            ElfError::Unsupported { what } => write!(f, "unsupported ELF: {what}"),
        }
    }
}

impl std::error::Error for ElfError {}

struct Reader<'a> {
    data: &'a [u8],
}

impl<'a> Reader<'a> {
    fn u16_at(&self, off: usize, ctx: &'static str) -> Result<u16, ElfError> {
        let b = self
            .data
            .get(off..off + 2)
            .ok_or(ElfError::Truncated { context: ctx })?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    fn u32_at(&self, off: usize, ctx: &'static str) -> Result<u32, ElfError> {
        let b = self
            .data
            .get(off..off + 4)
            .ok_or(ElfError::Truncated { context: ctx })?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn bytes_at(&self, off: usize, len: usize, ctx: &'static str) -> Result<&'a [u8], ElfError> {
        self.data
            .get(off..off + len)
            .ok_or(ElfError::Truncated { context: ctx })
    }
}

impl ElfFile {
    /// Creates an empty image with the given entry point.
    pub fn new(entry: u32) -> Self {
        ElfFile {
            entry,
            segments: Vec::new(),
            symbols: Vec::new(),
        }
    }

    /// Looks up a symbol by name.
    pub fn symbol(&self, name: &str) -> Option<&Symbol> {
        self.symbols.iter().find(|s| s.name == name)
    }

    /// Parses an ELF32 little-endian executable.
    ///
    /// # Errors
    /// Returns [`ElfError`] for malformed, truncated, or non-RISC-V files.
    pub fn parse(data: &[u8]) -> Result<ElfFile, ElfError> {
        let r = Reader { data };
        let ident = r.bytes_at(0, EI_NIDENT, "e_ident")?;
        if &ident[0..4] != b"\x7fELF" {
            return Err(ElfError::BadMagic);
        }
        if ident[4] != 1 || ident[5] != 1 {
            return Err(ElfError::BadMagic); // not ELFCLASS32 / ELFDATA2LSB
        }
        let e_type = r.u16_at(16, "e_type")?;
        if e_type != ET_EXEC {
            return Err(ElfError::Unsupported {
                what: format!("e_type {e_type} (want ET_EXEC)"),
            });
        }
        let e_machine = r.u16_at(18, "e_machine")?;
        if e_machine != EM_RISCV {
            return Err(ElfError::Unsupported {
                what: format!("e_machine {e_machine} (want RISC-V)"),
            });
        }
        let entry = r.u32_at(24, "e_entry")?;
        let phoff = r.u32_at(28, "e_phoff")? as usize;
        let shoff = r.u32_at(32, "e_shoff")? as usize;
        let phentsize = r.u16_at(42, "e_phentsize")? as usize;
        let phnum = r.u16_at(44, "e_phnum")? as usize;
        let shentsize = r.u16_at(46, "e_shentsize")? as usize;
        let shnum = r.u16_at(48, "e_shnum")? as usize;

        let mut out = ElfFile::new(entry);
        for i in 0..phnum {
            let base = phoff + i * phentsize;
            let p_type = r.u32_at(base, "p_type")?;
            if p_type != PT_LOAD {
                continue;
            }
            let p_offset = r.u32_at(base + 4, "p_offset")? as usize;
            let p_vaddr = r.u32_at(base + 8, "p_vaddr")?;
            let p_filesz = r.u32_at(base + 16, "p_filesz")? as usize;
            let p_memsz = r.u32_at(base + 20, "p_memsz")? as usize;
            let p_flags = r.u32_at(base + 24, "p_flags")?;
            let file_bytes = r.bytes_at(p_offset, p_filesz, "segment data")?;
            let mut seg_data = file_bytes.to_vec();
            seg_data.resize(p_memsz.max(p_filesz), 0); // zero-fill bss tail
            out.segments.push(Segment {
                vaddr: p_vaddr,
                data: seg_data,
                flags: p_flags,
            });
        }

        // Locate .symtab and its linked string table.
        for i in 0..shnum {
            let base = shoff + i * shentsize;
            let sh_type = r.u32_at(base + 4, "sh_type")?;
            if sh_type != SHT_SYMTAB {
                continue;
            }
            let sh_offset = r.u32_at(base + 16, "sh_offset")? as usize;
            let sh_size = r.u32_at(base + 20, "sh_size")? as usize;
            let sh_link = r.u32_at(base + 24, "sh_link")? as usize;
            let sh_entsize = r.u32_at(base + 36, "sh_entsize")? as usize;
            if sh_entsize == 0 {
                continue;
            }
            // The linked section is the string table.
            let str_base = shoff + sh_link * shentsize;
            let str_off = r.u32_at(str_base + 16, "strtab offset")? as usize;
            let str_size = r.u32_at(str_base + 20, "strtab size")? as usize;
            let strtab = r.bytes_at(str_off, str_size, "strtab data")?;
            let count = sh_size / sh_entsize;
            for s in 0..count {
                let sb = sh_offset + s * sh_entsize;
                let st_name = r.u32_at(sb, "st_name")? as usize;
                let st_value = r.u32_at(sb + 4, "st_value")?;
                let st_size = r.u32_at(sb + 8, "st_size")?;
                if st_name == 0 {
                    continue; // null or unnamed symbol
                }
                let name_bytes: Vec<u8> = strtab
                    .get(st_name..)
                    .unwrap_or(&[])
                    .iter()
                    .take_while(|&&b| b != 0)
                    .copied()
                    .collect();
                let name = String::from_utf8_lossy(&name_bytes).into_owned();
                out.symbols.push(Symbol {
                    name,
                    value: st_value,
                    size: st_size,
                });
            }
        }
        Ok(out)
    }

    /// Serializes the image as an ELF32 executable with program headers, a
    /// symbol table, and the section headers needed to find it again.
    pub fn to_bytes(&self) -> Vec<u8> {
        let ehsize = 52usize;
        let phentsize = 32usize;
        let shentsize = 40usize;
        let phnum = self.segments.len();

        // ----- build .strtab -----
        let mut strtab: Vec<u8> = vec![0];
        let mut name_offsets = Vec::with_capacity(self.symbols.len());
        for s in &self.symbols {
            name_offsets.push(strtab.len() as u32);
            strtab.extend_from_slice(s.name.as_bytes());
            strtab.push(0);
        }

        // ----- build .symtab (entry 0 is the null symbol) -----
        let symentsize = 16usize;
        let mut symtab: Vec<u8> = vec![0; symentsize];
        for (s, &noff) in self.symbols.iter().zip(&name_offsets) {
            symtab.extend_from_slice(&noff.to_le_bytes());
            symtab.extend_from_slice(&s.value.to_le_bytes());
            symtab.extend_from_slice(&s.size.to_le_bytes());
            symtab.push(0x10); // STB_GLOBAL << 4 | STT_NOTYPE
            symtab.push(0); // st_other
            symtab.extend_from_slice(&1u16.to_le_bytes()); // st_shndx: arbitrary
        }

        // ----- build .shstrtab -----
        let mut shstrtab: Vec<u8> = vec![0];
        let shstr = |tab: &mut Vec<u8>, name: &str| -> u32 {
            let off = tab.len() as u32;
            tab.extend_from_slice(name.as_bytes());
            tab.push(0);
            off
        };
        let n_text = shstr(&mut shstrtab, ".progdata");
        let n_symtab = shstr(&mut shstrtab, ".symtab");
        let n_strtab = shstr(&mut shstrtab, ".strtab");
        let n_shstrtab = shstr(&mut shstrtab, ".shstrtab");

        // ----- layout -----
        let phoff = ehsize;
        let mut pos = phoff + phnum * phentsize;
        let mut seg_offsets = Vec::with_capacity(phnum);
        for seg in &self.segments {
            // Align segment file offsets to 4 bytes.
            pos = (pos + 3) & !3;
            seg_offsets.push(pos);
            pos += seg.data.len();
        }
        pos = (pos + 3) & !3;
        let symtab_off = pos;
        pos += symtab.len();
        let strtab_off = pos;
        pos += strtab.len();
        let shstrtab_off = pos;
        pos += shstrtab.len();
        pos = (pos + 3) & !3;
        let shoff = pos;
        // Sections: NULL, .progdata (covers first segment, informational),
        // .symtab, .strtab, .shstrtab
        let shnum = 5usize;

        let mut out = Vec::with_capacity(shoff + shnum * shentsize);
        // ----- ELF header -----
        out.extend_from_slice(b"\x7fELF");
        out.push(1); // ELFCLASS32
        out.push(1); // ELFDATA2LSB
        out.push(1); // EV_CURRENT
        out.extend_from_slice(&[0; 9]); // padding
        out.extend_from_slice(&ET_EXEC.to_le_bytes());
        out.extend_from_slice(&EM_RISCV.to_le_bytes());
        out.extend_from_slice(&1u32.to_le_bytes()); // e_version
        out.extend_from_slice(&self.entry.to_le_bytes());
        out.extend_from_slice(&(phoff as u32).to_le_bytes());
        out.extend_from_slice(&(shoff as u32).to_le_bytes());
        out.extend_from_slice(&0u32.to_le_bytes()); // e_flags
        out.extend_from_slice(&(ehsize as u16).to_le_bytes());
        out.extend_from_slice(&(phentsize as u16).to_le_bytes());
        out.extend_from_slice(&(phnum as u16).to_le_bytes());
        out.extend_from_slice(&(shentsize as u16).to_le_bytes());
        out.extend_from_slice(&(shnum as u16).to_le_bytes());
        out.extend_from_slice(&4u16.to_le_bytes()); // e_shstrndx

        // ----- program headers -----
        for (seg, &off) in self.segments.iter().zip(&seg_offsets) {
            out.extend_from_slice(&PT_LOAD.to_le_bytes());
            out.extend_from_slice(&(off as u32).to_le_bytes());
            out.extend_from_slice(&seg.vaddr.to_le_bytes()); // p_vaddr
            out.extend_from_slice(&seg.vaddr.to_le_bytes()); // p_paddr
            out.extend_from_slice(&(seg.data.len() as u32).to_le_bytes()); // filesz
            out.extend_from_slice(&(seg.data.len() as u32).to_le_bytes()); // memsz
            out.extend_from_slice(&seg.flags.to_le_bytes());
            out.extend_from_slice(&4u32.to_le_bytes()); // p_align
        }

        // ----- segment data -----
        for (seg, &off) in self.segments.iter().zip(&seg_offsets) {
            out.resize(off, 0);
            out.extend_from_slice(&seg.data);
        }
        out.resize(symtab_off, 0);
        out.extend_from_slice(&symtab);
        debug_assert_eq!(out.len(), strtab_off);
        out.extend_from_slice(&strtab);
        debug_assert_eq!(out.len(), shstrtab_off);
        out.extend_from_slice(&shstrtab);
        out.resize(shoff, 0);

        // ----- section headers -----
        let mut sh = |name: u32,
                      sh_type: u32,
                      offset: usize,
                      size: usize,
                      link: u32,
                      entsize: usize,
                      addr: u32| {
            out.extend_from_slice(&name.to_le_bytes());
            out.extend_from_slice(&sh_type.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // sh_flags
            out.extend_from_slice(&addr.to_le_bytes());
            out.extend_from_slice(&(offset as u32).to_le_bytes());
            out.extend_from_slice(&(size as u32).to_le_bytes());
            out.extend_from_slice(&link.to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes()); // sh_info
            out.extend_from_slice(&4u32.to_le_bytes()); // sh_addralign
            out.extend_from_slice(&(entsize as u32).to_le_bytes());
        };
        sh(0, 0, 0, 0, 0, 0, 0); // NULL
        let (first_off, first_len, first_addr) = self
            .segments
            .first()
            .map(|s| (seg_offsets[0], s.data.len(), s.vaddr))
            .unwrap_or((0, 0, 0));
        sh(n_text, SHT_PROGBITS, first_off, first_len, 0, 0, first_addr);
        sh(
            n_symtab,
            SHT_SYMTAB,
            symtab_off,
            symtab.len(),
            3,
            symentsize,
            0,
        );
        sh(n_strtab, SHT_STRTAB, strtab_off, strtab.len(), 0, 0, 0);
        sh(
            n_shstrtab,
            SHT_STRTAB,
            shstrtab_off,
            shstrtab.len(),
            0,
            0,
            0,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ElfFile {
        let mut elf = ElfFile::new(0x8000_0000);
        elf.segments.push(Segment {
            vaddr: 0x8000_0000,
            data: vec![0x93, 0x02, 0x50, 0x00, 0x73, 0x00, 0x00, 0x00],
            flags: PF_R | PF_X,
        });
        elf.segments.push(Segment {
            vaddr: 0x8001_0000,
            data: vec![1, 2, 3, 4, 5],
            flags: PF_R | PF_W,
        });
        elf.symbols.push(Symbol {
            name: "_start".into(),
            value: 0x8000_0000,
            size: 8,
        });
        elf.symbols.push(Symbol {
            name: "__sym_input".into(),
            value: 0x8001_0000,
            size: 5,
        });
        elf
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let elf = sample();
        let bytes = elf.to_bytes();
        let back = ElfFile::parse(&bytes).expect("parses");
        assert_eq!(back.entry, elf.entry);
        assert_eq!(back.segments, elf.segments);
        assert_eq!(back.symbols, elf.symbols);
    }

    #[test]
    fn rejects_bad_magic() {
        assert!(ElfFile::parse(b"not an elf").is_err()); // short: truncated
        let junk = [0u8; 64];
        assert_eq!(ElfFile::parse(&junk), Err(ElfError::BadMagic));
        let mut bytes = sample().to_bytes();
        bytes[5] = 2; // big-endian
        assert_eq!(ElfFile::parse(&bytes), Err(ElfError::BadMagic));
    }

    #[test]
    fn rejects_truncation() {
        let bytes = sample().to_bytes();
        for cut in [10, 40, 60] {
            assert!(ElfFile::parse(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_wrong_machine() {
        let mut bytes = sample().to_bytes();
        bytes[18] = 0x3e; // x86-64
        assert!(matches!(
            ElfFile::parse(&bytes),
            Err(ElfError::Unsupported { .. })
        ));
    }

    #[test]
    fn symbol_lookup() {
        let elf = sample();
        assert_eq!(elf.symbol("_start").unwrap().value, 0x8000_0000);
        assert!(elf.symbol("nope").is_none());
    }

    #[test]
    fn empty_file_roundtrip() {
        let elf = ElfFile::new(0x1234);
        let back = ElfFile::parse(&elf.to_bytes()).expect("parses");
        assert_eq!(back.entry, 0x1234);
        assert!(back.segments.is_empty());
        assert!(back.symbols.is_empty());
    }
}
