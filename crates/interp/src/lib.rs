//! `binsym-interp` — the concrete modular interpreter over the formal ISA
//! specification.
//!
//! LibRISCV ships a concrete interpreter as the reference backend for its
//! executable specification; this crate is its analog. It gives the
//! specification primitives their standard meaning over `u32` machine words
//! and executes ELF binaries instruction by instruction. It serves three
//! roles in the reproduction:
//!
//! 1. validating the assembler/ELF/spec pipeline end to end,
//! 2. differential testing against the symbolic engine (a fully concrete
//!    input must drive both to identical states), and
//! 3. replaying models found by symbolic execution to confirm paths.
//!
//! # Harness ABI
//! Programs terminate via `ecall` with `a7 = 93` (Linux `exit`); `a0` is the
//! exit status. A nonzero status is how benchmark programs report assertion
//! failures. `ebreak` is treated as an abnormal stop.

#![warn(missing_docs)]

use std::fmt;

use binsym_elf::ElfFile;
use binsym_isa::{Expr, MemWidth, Memory, Reg, RegFile, Spec, Stmt};

/// Syscall number of `exit` in the harness ABI.
pub const SYSCALL_EXIT: u32 = 93;

/// Why [`Machine::run`] stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// The program executed `ecall` with `a7 = 93`; payload is `a0`.
    Exited(u32),
    /// The program executed `ebreak`.
    Break,
    /// The step budget was exhausted before the program terminated.
    OutOfFuel,
}

/// Execution error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Instruction word did not decode.
    Decode(binsym_isa::DecodeError),
    /// `ecall` with an unknown syscall number.
    UnknownSyscall {
        /// The value of `a7`.
        number: u32,
        /// Program counter of the `ecall`.
        pc: u32,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Decode(e) => write!(f, "{e}"),
            ExecError::UnknownSyscall { number, pc } => {
                write!(f, "unknown syscall {number} at pc {pc:#010x}")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<binsym_isa::DecodeError> for ExecError {
    fn from(e: binsym_isa::DecodeError) -> Self {
        ExecError::Decode(e)
    }
}

/// Result of a single [`Machine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepResult {
    /// Execution continues at the (already updated) program counter.
    Continue,
    /// The program exited via the harness ABI.
    Exited(u32),
    /// The program hit `ebreak`.
    Break,
}

/// Masks a value to `w` bits.
#[inline]
fn mask(v: u64, w: u32) -> u64 {
    if w >= 64 {
        v
    } else {
        v & ((1u64 << w) - 1)
    }
}

/// Sign-extends a `w`-bit value to i64.
#[inline]
fn sext(v: u64, w: u32) -> i64 {
    let sh = 64 - w;
    ((v << sh) as i64) >> sh
}

/// The concrete RV32 machine: register file, memory, program counter, and
/// the formal specification it interprets.
///
/// # Example
/// ```
/// use binsym_asm::Assembler;
/// use binsym_interp::{Exit, Machine};
/// use binsym_isa::Spec;
///
/// let elf = Assembler::new().assemble(r#"
/// _start:
///     li a0, 6
///     li a1, 7
///     mul a0, a0, a1
///     li a7, 93
///     ecall
/// "#)?;
/// let mut m = Machine::new(Spec::rv32im());
/// m.load_elf(&elf);
/// assert_eq!(m.run(1000)?, Exit::Exited(42));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    spec: Spec,
    /// General-purpose registers (reused generic component).
    pub regs: RegFile<u32>,
    /// Byte-addressed memory (reused generic component).
    pub mem: Memory<u8>,
    /// Program counter.
    pub pc: u32,
    /// Instructions executed so far.
    pub steps: u64,
    next_pc: Option<u32>,
}

impl Machine {
    /// Creates a machine with zeroed state.
    pub fn new(spec: Spec) -> Self {
        Machine {
            spec,
            regs: RegFile::new(0),
            mem: Memory::new(0),
            pc: 0,
            steps: 0,
            next_pc: None,
        }
    }

    /// The specification this machine interprets.
    pub fn spec(&self) -> &Spec {
        &self.spec
    }

    /// Loads an ELF image: copies segments into memory and sets the pc to
    /// the entry point.
    pub fn load_elf(&mut self, elf: &ElfFile) {
        for seg in &elf.segments {
            self.mem.store_slice(seg.vaddr, &seg.data);
        }
        self.pc = elf.entry;
    }

    /// Evaluates an expression primitive in the concrete domain.
    pub fn eval(&self, e: &Expr) -> u64 {
        let w = e.width();
        match e {
            Expr::Const { value, width } => mask(*value, *width),
            Expr::Reg(r) => u64::from(*self.regs.read(*r)),
            Expr::Pc => u64::from(self.pc),
            Expr::Not(a) => mask(!self.eval(a), w),
            Expr::Neg(a) => mask(self.eval(a).wrapping_neg(), w),
            Expr::Add(a, b) => mask(self.eval(a).wrapping_add(self.eval(b)), w),
            Expr::Sub(a, b) => mask(self.eval(a).wrapping_sub(self.eval(b)), w),
            Expr::Mul(a, b) => mask(self.eval(a).wrapping_mul(self.eval(b)), w),
            Expr::UDiv(a, b) => {
                let (x, y) = (self.eval(a), self.eval(b));
                // RISC-V semantics: division by zero yields all-ones.
                x.checked_div(y).unwrap_or(mask(u64::MAX, w))
            }
            Expr::SDiv(a, b) => {
                let (x, y) = (sext(self.eval(a), w), sext(self.eval(b), w));
                let r = if y == 0 { -1 } else { x.wrapping_div(y) };
                mask(r as u64, w)
            }
            Expr::URem(a, b) => {
                let (x, y) = (self.eval(a), self.eval(b));
                if y == 0 {
                    x
                } else {
                    x % y
                }
            }
            Expr::SRem(a, b) => {
                let (x, y) = (sext(self.eval(a), w), sext(self.eval(b), w));
                let r = if y == 0 { x } else { x.wrapping_rem(y) };
                mask(r as u64, w)
            }
            Expr::And(a, b) => self.eval(a) & self.eval(b),
            Expr::Or(a, b) => self.eval(a) | self.eval(b),
            Expr::Xor(a, b) => self.eval(a) ^ self.eval(b),
            Expr::Shl(a, b) => {
                let (x, y) = (self.eval(a), self.eval(b));
                if y >= u64::from(w) {
                    0
                } else {
                    mask(x << y, w)
                }
            }
            Expr::LShr(a, b) => {
                let (x, y) = (self.eval(a), self.eval(b));
                if y >= u64::from(w) {
                    0
                } else {
                    x >> y
                }
            }
            Expr::AShr(a, b) => {
                let x = sext(self.eval(a), w);
                let y = self.eval(b).min(u64::from(w) - 1) as u32;
                mask((x >> y) as u64, w)
            }
            Expr::Eq(a, b) => u64::from(self.eval(a) == self.eval(b)),
            Expr::Ne(a, b) => u64::from(self.eval(a) != self.eval(b)),
            Expr::Ult(a, b) => u64::from(self.eval(a) < self.eval(b)),
            Expr::Slt(a, b) => {
                let aw = a.width();
                u64::from(sext(self.eval(a), aw) < sext(self.eval(b), aw))
            }
            Expr::Uge(a, b) => u64::from(self.eval(a) >= self.eval(b)),
            Expr::Sge(a, b) => {
                let aw = a.width();
                u64::from(sext(self.eval(a), aw) >= sext(self.eval(b), aw))
            }
            Expr::Ite { cond, then, els } => {
                if self.eval(cond) != 0 {
                    self.eval(then)
                } else {
                    self.eval(els)
                }
            }
            Expr::SExt { value, to } => {
                let vw = value.width();
                mask(sext(self.eval(value), vw) as u64, *to)
            }
            Expr::ZExt { value, .. } => self.eval(value),
            Expr::Extract { value, hi, lo } => mask(self.eval(value) >> lo, hi - lo + 1),
            Expr::Concat(a, b) => {
                let bw = b.width();
                mask((self.eval(a) << bw) | self.eval(b), w)
            }
        }
    }

    fn exec_stmts(&mut self, stmts: &[Stmt]) -> Result<StepResult, ExecError> {
        for s in stmts {
            match s {
                Stmt::WriteRegister { rd, value } => {
                    let v = self.eval(value) as u32;
                    self.regs.write(*rd, v);
                }
                Stmt::WritePc(e) => {
                    self.next_pc = Some(self.eval(e) as u32);
                }
                Stmt::Load {
                    rd,
                    width,
                    signed,
                    addr,
                } => {
                    let a = self.eval(addr) as u32;
                    let raw = self.load_mem(a, *width);
                    let v = if *signed {
                        mask(sext(u64::from(raw), width.bits()) as u64, 32) as u32
                    } else {
                        raw
                    };
                    self.regs.write(*rd, v);
                }
                Stmt::Store { width, addr, value } => {
                    let a = self.eval(addr) as u32;
                    let v = self.eval(value) as u32;
                    self.store_mem(a, *width, v);
                }
                Stmt::If { cond, then, els } => {
                    let branch = if self.eval(cond) != 0 { then } else { els };
                    let r = self.exec_stmts(branch)?;
                    if r != StepResult::Continue {
                        return Ok(r);
                    }
                }
                Stmt::Ecall => {
                    let num = *self.regs.read(Reg::A7);
                    if num == SYSCALL_EXIT {
                        return Ok(StepResult::Exited(*self.regs.read(Reg::A0)));
                    }
                    return Err(ExecError::UnknownSyscall {
                        number: num,
                        pc: self.pc,
                    });
                }
                Stmt::Ebreak => return Ok(StepResult::Break),
                Stmt::Fence => {}
            }
        }
        Ok(StepResult::Continue)
    }

    fn load_mem(&self, addr: u32, width: MemWidth) -> u32 {
        match width {
            MemWidth::Byte => u32::from(*self.mem.load(addr)),
            MemWidth::Half => u32::from(self.mem.load_u16(addr)),
            MemWidth::Word => self.mem.load_u32(addr),
        }
    }

    fn store_mem(&mut self, addr: u32, width: MemWidth, v: u32) {
        match width {
            MemWidth::Byte => self.mem.store(addr, v as u8),
            MemWidth::Half => self.mem.store_u16(addr, v as u16),
            MemWidth::Word => self.mem.store_u32(addr, v),
        }
    }

    /// Fetch–decode–execute of one instruction.
    ///
    /// # Errors
    /// Returns [`ExecError`] on illegal instructions or unknown syscalls.
    pub fn step(&mut self) -> Result<StepResult, ExecError> {
        let raw = self.mem.load_u32(self.pc);
        let d = self.spec.decode(raw).map_err(|mut e| {
            e.addr = Some(self.pc);
            e
        })?;
        let prog = self.spec.semantics(&d);
        self.next_pc = None;
        let r = self.exec_stmts(&prog)?;
        self.steps += 1;
        if r == StepResult::Continue {
            self.pc = self.next_pc.unwrap_or(self.pc.wrapping_add(4));
        }
        Ok(r)
    }

    /// Runs until exit, `ebreak`, or the step budget is exhausted.
    ///
    /// # Errors
    /// Returns [`ExecError`] on illegal instructions or unknown syscalls.
    pub fn run(&mut self, max_steps: u64) -> Result<Exit, ExecError> {
        for _ in 0..max_steps {
            match self.step()? {
                StepResult::Continue => {}
                StepResult::Exited(code) => return Ok(Exit::Exited(code)),
                StepResult::Break => return Ok(Exit::Break),
            }
        }
        Ok(Exit::OutOfFuel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use binsym_asm::Assembler;

    fn run_asm(src: &str) -> Exit {
        let elf = Assembler::new().assemble(src).expect("assembles");
        let mut m = Machine::new(Spec::rv32im());
        m.load_elf(&elf);
        m.run(100_000).expect("runs")
    }

    fn exit_code(src: &str) -> u32 {
        match run_asm(src) {
            Exit::Exited(c) => c,
            other => panic!("expected exit, got {other:?}"),
        }
    }

    #[test]
    fn arithmetic_program() {
        let code = exit_code(
            r#"
_start:
    li a0, 21
    li a1, 2
    mul a0, a0, a1
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 42);
    }

    #[test]
    fn division_by_zero_yields_all_ones() {
        let code = exit_code(
            r#"
_start:
    li a0, 17
    li a1, 0
    divu a0, a0, a1
    # all-ones & 0xff == 0xff
    andi a0, a0, 0xff
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0xff);
    }

    #[test]
    fn signed_division_edge_cases() {
        // i32::MIN / -1 must wrap to i32::MIN per the M extension.
        let code = exit_code(
            r#"
_start:
    li a0, 0x80000000
    li a1, -1
    div a2, a0, a1
    bne a2, a0, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0);
    }

    #[test]
    fn loops_and_branches() {
        // Sum 1..=10 = 55.
        let code = exit_code(
            r#"
_start:
    li a0, 0
    li a1, 1
    li a2, 11
loop:
    add a0, a0, a1
    addi a1, a1, 1
    bne a1, a2, loop
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 55);
    }

    #[test]
    fn memory_and_functions() {
        let code = exit_code(
            r#"
        .data
buf:    .space 16
        .text
_start:
    la a0, buf
    li a1, 0xab
    sb a1, 3(a0)
    lbu a2, 3(a0)
    mv a0, a2
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0xab);
    }

    #[test]
    fn call_and_return() {
        let code = exit_code(
            r#"
_start:
    li a0, 5
    call double
    call double
    li a7, 93
    ecall
double:
    add a0, a0, a0
    ret
"#,
        );
        assert_eq!(code, 20);
    }

    #[test]
    fn sign_extension_of_loads() {
        // lb of 0x80 must be sign-extended: angr bug #3 territory.
        let code = exit_code(
            r#"
        .data
v:      .byte 0x80
        .text
_start:
    la a0, v
    lb a1, 0(a0)
    li a2, -128
    bne a1, a2, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0);
    }

    #[test]
    fn srai_uses_unsigned_shamt() {
        // x = 1 << 31; x >>a 31 == -1: angr bug #4 territory.
        let code = exit_code(
            r#"
_start:
    li a0, 1
    slli a0, a0, 31
    srai a0, a0, 31
    li a1, -1
    bne a0, a1, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0);
    }

    #[test]
    fn sra_uses_register_value() {
        // Shift amount comes from the rs2 *value* (angr bug #2 used index).
        let code = exit_code(
            r#"
_start:
    li t3, 0x80000000   # t3 is x28: a buggy lifter would shift by 29 (rs2 idx)
    li t4, 4
    sra a0, t3, t4
    li a1, 0xf8000000
    bne a0, a1, fail
    li a0, 0
    li a7, 93
    ecall
fail:
    li a0, 1
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0);
    }

    #[test]
    fn slt_is_signed() {
        // -1 < 1 signed (angr bug #5 compared unsigned).
        let code = exit_code(
            r#"
_start:
    li a0, -1
    li a1, 1
    slt a2, a0, a1
    li a7, 93
    mv a0, a2
    ecall
"#,
        );
        assert_eq!(code, 1);
    }

    #[test]
    fn mulh_family() {
        let code = exit_code(
            r#"
_start:
    li a0, 0x10000
    li a1, 0x10000
    mulhu a2, a0, a1     # (2^16 * 2^16) >> 32 == 1
    mv a0, a2
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 1);

        let code = exit_code(
            r#"
_start:
    li a0, -1
    li a1, -1
    mulh a2, a0, a1      # (-1 * -1) >> 32 == 0
    mv a0, a2
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 0);
    }

    #[test]
    fn ebreak_stops() {
        assert_eq!(run_asm("_start:\n ebreak\n"), Exit::Break);
    }

    #[test]
    fn out_of_fuel() {
        let elf = Assembler::new()
            .assemble("_start:\n j _start\n")
            .expect("assembles");
        let mut m = Machine::new(Spec::rv32im());
        m.load_elf(&elf);
        assert_eq!(m.run(100).expect("runs"), Exit::OutOfFuel);
    }

    #[test]
    fn unknown_syscall_errors() {
        let elf = Assembler::new()
            .assemble("_start:\n li a7, 64\n ecall\n")
            .expect("assembles");
        let mut m = Machine::new(Spec::rv32im());
        m.load_elf(&elf);
        assert!(matches!(
            m.run(10),
            Err(ExecError::UnknownSyscall { number: 64, .. })
        ));
    }

    #[test]
    fn jalr_with_equal_registers() {
        // jalr a0, a0, 0 must jump to the *old* a0.
        let code = exit_code(
            r#"
_start:
    la a0, target
    jalr a0, a0, 0
    ebreak
target:
    li a0, 7
    li a7, 93
    ecall
"#,
        );
        assert_eq!(code, 7);
    }

    #[test]
    fn madd_custom_instruction_executes() {
        use binsym_isa::encoding::MADD_YAML;
        use binsym_isa::spec::madd_semantics;
        let mut spec = Spec::rv32im();
        spec.register_custom(MADD_YAML, madd_semantics())
            .expect("registers");
        let asm = Assembler::new().with_table(spec.table().clone());
        let elf = asm
            .assemble(
                r#"
_start:
    li a0, 6
    li a1, 7
    li a2, 8
    madd a3, a0, a1, a2    # 6*7+8 = 50
    mv a0, a3
    li a7, 93
    ecall
"#,
            )
            .expect("assembles with custom table");
        let mut m = Machine::new(spec);
        m.load_elf(&elf);
        assert_eq!(m.run(100).expect("runs"), Exit::Exited(50));
    }
}
