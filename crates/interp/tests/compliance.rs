//! A riscv-tests-style compliance suite for the formal specification,
//! executed on the concrete reference interpreter.
//!
//! Each case is a small directed program whose expected result comes from
//! the RISC-V Unprivileged ISA manual (many are taken from the official
//! riscv-tests repository's edge cases). Because the interpreter derives
//! its behaviour entirely from `binsym-isa`'s DSL semantics, these tests
//! pin the *specification* — and the differential suites in `tests/` then
//! carry the guarantee over to the symbolic engines.

use binsym_asm::Assembler;
use binsym_interp::{Exit, Machine};
use binsym_isa::Spec;

/// Runs a fragment that leaves its result in `a0` and exits.
fn run(body: &str) -> u32 {
    let src = format!("_start:\n{body}\n        li a7, 93\n        ecall\n");
    let elf = Assembler::new().assemble(&src).expect("assembles");
    let mut m = Machine::new(Spec::rv32im());
    m.load_elf(&elf);
    match m.run(100_000).expect("runs") {
        Exit::Exited(code) => code,
        other => panic!("unexpected exit {other:?}"),
    }
}

/// Checks `op rd, rs1, rs2` over a table of `(lhs, rhs, expected)`.
fn check_rr(op: &str, cases: &[(u32, u32, u32)]) {
    for &(a, b, want) in cases {
        let got = run(&format!(
            "        li a1, {a}\n        li a2, {b}\n        {op} a0, a1, a2"
        ));
        assert_eq!(got, want, "{op} {a:#x}, {b:#x}");
    }
}

/// Checks `op rd, rs1, imm` over `(value, imm, expected)`.
fn check_ri(op: &str, cases: &[(u32, i32, u32)]) {
    for &(a, imm, want) in cases {
        let got = run(&format!("        li a1, {a}\n        {op} a0, a1, {imm}"));
        assert_eq!(got, want, "{op} {a:#x}, {imm}");
    }
}

#[test]
fn add_sub() {
    check_rr(
        "add",
        &[
            (0, 0, 0),
            (1, 1, 2),
            (0x7fff_ffff, 1, 0x8000_0000),
            (0xffff_ffff, 1, 0),
            (0x8000_0000, 0x8000_0000, 0),
        ],
    );
    check_rr(
        "sub",
        &[
            (0, 0, 0),
            (0, 1, 0xffff_ffff),
            (0x8000_0000, 1, 0x7fff_ffff),
            (3, 5, 0xffff_fffe),
        ],
    );
}

#[test]
fn logic_ops() {
    check_rr("and", &[(0xff00_ff00, 0x0f0f_0f0f, 0x0f00_0f00)]);
    check_rr("or", &[(0xff00_ff00, 0x0f0f_0f0f, 0xff0f_ff0f)]);
    check_rr("xor", &[(0xff00_ff00, 0x0f0f_0f0f, 0xf00f_f00f)]);
    check_ri(
        "andi",
        &[(0xffff_ffff, -1, 0xffff_ffff), (0xf0f0, 0xff, 0xf0)],
    );
    check_ri("ori", &[(0xff00, 0x0f, 0xff0f)]);
    check_ri("xori", &[(0x00ff_00ff, -1, 0xff00_ff00)]);
}

#[test]
fn shifts() {
    check_rr(
        "sll",
        &[
            (1, 0, 1),
            (1, 31, 0x8000_0000),
            (1, 32, 1),                     // amount masked to 5 bits
            (0xffff_ffff, 33, 0xffff_fffe), // 33 & 31 == 1
        ],
    );
    check_rr(
        "srl",
        &[
            (0x8000_0000, 31, 1),
            (0x8000_0000, 32, 0x8000_0000), // masked to 0
            (0xffff_ffff, 4, 0x0fff_ffff),
        ],
    );
    check_rr(
        "sra",
        &[
            (0x8000_0000, 31, 0xffff_ffff),
            (0x8000_0000, 1, 0xc000_0000),
            (0x7fff_ffff, 1, 0x3fff_ffff),
            (0xffff_ffff, 33, 0xffff_ffff), // masked to 1, sign fill
        ],
    );
}

#[test]
fn set_less_than() {
    check_rr(
        "slt",
        &[
            (0, 0, 0),
            (0xffff_ffff, 0, 1), // -1 < 0
            (0, 0xffff_ffff, 0), // 0 < -1 is false
            (0x8000_0000, 0x7fff_ffff, 1),
        ],
    );
    check_rr(
        "sltu",
        &[
            (0, 0, 0),
            (0xffff_ffff, 0, 0),
            (0, 0xffff_ffff, 1),
            (0x8000_0000, 0x7fff_ffff, 0),
        ],
    );
    check_ri("slti", &[(0xffff_ffff, 0, 1), (0, -1, 0)]);
    check_ri("sltiu", &[(0, -1, 1)]); // imm sign-extends then compares unsigned
}

#[test]
fn multiplication() {
    check_rr(
        "mul",
        &[
            (0x0000_0007, 0x0000_0006, 42),
            (0xffff_ffff, 0xffff_ffff, 1), // (-1)*(-1)
            (0x8000_0000, 2, 0),
            (0x1234_5678, 0, 0),
        ],
    );
    check_rr(
        "mulh",
        &[
            (0xffff_ffff, 0xffff_ffff, 0), // (-1)*(-1) = 1 -> hi 0
            (0x8000_0000, 0x8000_0000, 0x4000_0000),
            (0x7fff_ffff, 0x7fff_ffff, 0x3fff_ffff),
            (0xffff_ffff, 2, 0xffff_ffff), // -2 -> hi all ones
        ],
    );
    check_rr(
        "mulhu",
        &[(0xffff_ffff, 0xffff_ffff, 0xffff_fffe), (0x8000_0000, 2, 1)],
    );
    check_rr(
        "mulhsu",
        &[
            (0xffff_ffff, 0xffff_ffff, 0xffff_ffff), // -1 * big-unsigned
            (0x7fff_ffff, 2, 0),
        ],
    );
}

#[test]
fn division_compliance() {
    // The riscv-tests div/rem edge cases, verbatim.
    check_rr(
        "div",
        &[
            (20, 6, 3),
            ((-20i32) as u32, 6, (-3i32) as u32),
            (20, (-6i32) as u32, (-3i32) as u32),
            ((-20i32) as u32, (-6i32) as u32, 3),
            (0x8000_0000, 1, 0x8000_0000),
            (0x8000_0000, 0xffff_ffff, 0x8000_0000), // overflow
            (1, 0, 0xffff_ffff),                     // div by zero -> -1
            (0, 0, 0xffff_ffff),
        ],
    );
    check_rr(
        "divu",
        &[
            (20, 6, 3),
            (0x8000_0000, 2, 0x4000_0000),
            (1, 0, 0xffff_ffff),
            (0, 0, 0xffff_ffff),
        ],
    );
    check_rr(
        "rem",
        &[
            (20, 6, 2),
            ((-20i32) as u32, 6, (-2i32) as u32),
            (20, (-6i32) as u32, 2),
            ((-20i32) as u32, (-6i32) as u32, (-2i32) as u32),
            (0x8000_0000, 0xffff_ffff, 0), // overflow -> 0
            (1, 0, 1),                     // rem by zero -> dividend
            (0x8000_0000, 0, 0x8000_0000),
        ],
    );
    check_rr(
        "remu",
        &[
            (20, 6, 2),
            (0x8000_0000, 0x2000_0000, 0),
            (1, 0, 1),
            (0xffff_ffff, 0, 0xffff_ffff),
        ],
    );
}

#[test]
fn load_store_sign_extension() {
    let cases = [
        ("sb", "lb", 0x80u32, 0xffff_ff80u32),
        ("sb", "lbu", 0x80, 0x80),
        ("sh", "lh", 0x8000, 0xffff_8000),
        ("sh", "lhu", 0x8000, 0x8000),
        ("sw", "lw", 0xdead_beef, 0xdead_beef),
    ];
    for (st, ld, stored, want) in cases {
        let got = run(&format!(
            r#"        la a2, buf
        li a1, {stored}
        {st} a1, 0(a2)
        {ld} a0, 0(a2)
        j cont
        .data
buf:    .space 8
        .text
cont:"#
        ));
        assert_eq!(got, want, "{st}/{ld} {stored:#x}");
    }
}

#[test]
fn misaligned_halves_and_bytes() {
    // Byte-granular memory: offsets 1..3 work for sub-word accesses.
    let got = run(r#"        la a2, buf
        li a1, 0x11223344
        sw a1, 0(a2)
        lbu a3, 1(a2)
        lhu a4, 2(a2)
        slli a4, a4, 8
        or a0, a3, a4
        j cont
        .data
buf:    .space 8
        .text
cont:"#);
    // byte1 = 0x33, half at 2..3 = 0x1122 -> 0x112233 | ... = 0x33 | 0x112200
    assert_eq!(got, 0x0011_2233);
}

#[test]
fn lui_auipc_jal_jalr() {
    assert_eq!(
        run("        lui a0, 0xfffff\n        srli a0, a0, 12"),
        0xfffff
    );
    // auipc: pc-relative; _start is the text base.
    let got = run("        auipc a0, 0\n        la a1, _start\n        sub a0, a0, a1");
    assert_eq!(got, 0);
    // jal links pc+4; jalr to register target.
    let got = run(r#"        jal a1, step1
step1:  auipc a2, 0
        sub a0, a2, a1          # a2 == a1 => 0"#);
    assert_eq!(got, 0);
}

#[test]
fn branch_compliance() {
    // Each branch taken/not-taken combination sets a distinct bit.
    let got = run(r#"        li a0, 0
        li a1, -1
        li a2, 1
        blt a1, a2, b1          # signed: taken
        j b1f
b1:     ori a0, a0, 1
b1f:    bltu a1, a2, b2         # unsigned: 0xffffffff < 1 not taken
        j b2f
b2:     ori a0, a0, 2
b2f:    bge a1, a2, b3          # -1 >= 1 not taken
        j b3f
b3:     ori a0, a0, 4
b3f:    bgeu a1, a2, b4         # unsigned: taken
        j b4f
b4:     ori a0, a0, 8
b4f:    beq a1, a1, b5
        j b5f
b5:     ori a0, a0, 16
b5f:    bne a1, a2, b6
        j done
b6:     ori a0, a0, 32
done:"#);
    assert_eq!(got, 1 | 8 | 16 | 32);
}

#[test]
fn x0_semantics() {
    let got = run(r#"        li a1, 123
        add zero, a1, a1        # discarded
        add a0, zero, zero      # 0
        addi a0, a0, 55"#);
    assert_eq!(got, 55);
}

#[test]
fn fence_is_noop() {
    assert_eq!(run("        li a0, 9\n        fence"), 9);
}

#[test]
fn symbolic_witnesses_replay_on_the_reference_interpreter() {
    // The interpreter's third role (see the crate docs): replaying models
    // found by symbolic execution. Explore a program with the `Session`
    // API and confirm every error-path witness reproduces its exit code
    // concretely.
    use binsym::Session;

    let src = r#"
        .data
        .globl __sym_input
__sym_input: .word 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)
        li   a2, 12345
        beq  a1, a2, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 7
        li   a7, 93
        ecall
"#;
    let elf = Assembler::new().assemble(src).expect("assembles");
    let summary = Session::builder(Spec::rv32im())
        .binary(&elf)
        .build()
        .expect("sym input")
        .run_all()
        .expect("explores");
    assert_eq!(summary.error_paths.len(), 1);
    let base = elf.symbol("__sym_input").expect("symbol").value;
    for err in &summary.error_paths {
        let mut m = Machine::new(Spec::rv32im());
        m.load_elf(&elf);
        m.mem.store_slice(base, &err.input);
        let exit = m.run(100_000).expect("runs");
        assert_eq!(exit, Exit::Exited(err.exit_code.expect("exit path")));
    }
}
