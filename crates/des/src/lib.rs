//! `binsym-des` — a discrete-event simulation kernel in the style of the
//! SystemC reference simulator.
//!
//! The paper's SymEx-VP baseline executes software inside a SystemC virtual
//! prototype: every instruction advances simulated time, memory traffic goes
//! through TLM transactions, and the SystemC kernel schedules processes via
//! an event queue with delta cycles. The paper attributes SymEx-VP's
//! slowdown relative to BinSym to exactly this simulation environment
//! (§V-B). This crate provides that substrate: a virtual-time event queue
//! with delta-cycle semantics ([`EventQueue`]), a cooperative process
//! scheduler ([`Simulation`]), and a latency-annotating TLM-style bus model
//! ([`Bus`]). The benchmark harness wraps the BinSym engine in a simulated
//! CPU process to obtain the SymEx-VP persona.
//!
//! # Example
//! ```
//! use binsym_des::{Process, Simulation, Time};
//!
//! struct Ticker { ticks: u32 }
//! impl Process for Ticker {
//!     fn run(&mut self, _now: Time) -> Option<Time> {
//!         self.ticks += 1;
//!         if self.ticks < 5 { Some(Time::from_ns(10)) } else { None }
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! sim.spawn_at(Box::new(Ticker { ticks: 0 }), Time::ZERO);
//! sim.run_to_completion();
//! assert_eq!(sim.now(), Time::from_ns(40));
//! ```

#![warn(missing_docs)]

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Simulated time, in picoseconds (the SystemC default resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time(0);

    /// Constructs from nanoseconds.
    pub fn from_ns(ns: u64) -> Time {
        Time(ns * 1000)
    }

    /// Constructs from picoseconds.
    pub fn from_ps(ps: u64) -> Time {
        Time(ps)
    }

    /// Value in nanoseconds (truncating).
    pub fn as_ns(self) -> u64 {
        self.0 / 1000
    }

    /// Saturating addition.
    #[must_use]
    pub fn saturating_add(self, other: Time) -> Time {
        Time(self.0.saturating_add(other.0))
    }
}

impl std::ops::Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ps", self.0)
    }
}

/// Identifier of a scheduled process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProcessId(pub u32);

/// Kernel event: a process activation at `(time, delta)`.
///
/// Ordering follows SystemC: primary by timestamp, then by delta cycle, then
/// by insertion order (deterministic tie-breaking).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    time: Time,
    delta: u32,
    seq: u64,
    pid: ProcessId,
}

/// The virtual-time event queue with delta-cycle semantics.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
    now: Time,
    delta: u32,
    seq: u64,
    processed: u64,
}

impl EventQueue {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Current delta cycle within the current timestamp.
    pub fn delta_cycle(&self) -> u32 {
        self.delta
    }

    /// Number of events processed so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Schedules an activation of `pid` after `delay` (0 = next delta
    /// cycle at the current time).
    pub fn schedule(&mut self, pid: ProcessId, delay: Time) {
        let (time, delta) = if delay == Time::ZERO {
            (self.now, self.delta + 1)
        } else {
            (self.now + delay, 0)
        };
        self.seq += 1;
        self.heap.push(Reverse(Event {
            time,
            delta,
            seq: self.seq,
            pid,
        }));
    }

    /// Schedules an activation at an absolute time (must not be in the
    /// past).
    ///
    /// # Panics
    /// Panics if `at < now`.
    pub fn schedule_at(&mut self, pid: ProcessId, at: Time) {
        assert!(at >= self.now, "cannot schedule into the past");
        self.seq += 1;
        let delta = if at == self.now { self.delta + 1 } else { 0 };
        self.heap.push(Reverse(Event {
            time: at,
            delta,
            seq: self.seq,
            pid,
        }));
    }

    /// Pops the next event, advancing simulation time.
    pub fn pop(&mut self) -> Option<(Time, ProcessId)> {
        let Reverse(ev) = self.heap.pop()?;
        debug_assert!(ev.time >= self.now);
        self.now = ev.time;
        self.delta = ev.delta;
        self.processed += 1;
        Some((ev.time, ev.pid))
    }
}

/// A cooperative simulation process.
///
/// `run` is called at each activation; returning `Some(delay)` reschedules
/// the process after `delay`, returning `None` terminates it.
pub trait Process {
    /// One activation at simulation time `now`.
    fn run(&mut self, now: Time) -> Option<Time>;
}

/// A process scheduler over the event queue (the "simulation kernel").
#[derive(Default)]
pub struct Simulation {
    queue: EventQueue,
    procs: Vec<Option<Box<dyn Process>>>,
}

impl fmt::Debug for Simulation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.queue.now())
            .field("pending", &self.queue.len())
            .field("processes", &self.procs.len())
            .finish()
    }
}

impl Simulation {
    /// Creates an empty simulation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulation time.
    pub fn now(&self) -> Time {
        self.queue.now()
    }

    /// Events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.queue.processed()
    }

    /// Registers a process and schedules its first activation at `at`.
    pub fn spawn_at(&mut self, p: Box<dyn Process>, at: Time) -> ProcessId {
        let pid = ProcessId(self.procs.len() as u32);
        self.procs.push(Some(p));
        self.queue.schedule_at(pid, at);
        pid
    }

    /// Runs until no events remain.
    pub fn run_to_completion(&mut self) {
        while self.step() {}
    }

    /// Runs until simulated time exceeds `deadline` or no events remain.
    pub fn run_until(&mut self, deadline: Time) {
        while let Some(Reverse(ev)) = self.queue.heap.peek() {
            if ev.time > deadline {
                break;
            }
            self.step();
        }
    }

    /// Processes a single event. Returns false when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some((now, pid)) = self.queue.pop() else {
            return false;
        };
        let slot = &mut self.procs[pid.0 as usize];
        let Some(proc_ref) = slot.as_mut() else {
            return true; // stale event for a finished process
        };
        match proc_ref.run(now) {
            Some(delay) => self.queue.schedule(pid, delay),
            None => *slot = None,
        }
        true
    }
}

/// A latency-annotating TLM-style bus: every transport returns the time the
/// access costs, and the initiating process waits for it.
#[derive(Debug, Clone, Copy)]
pub struct Bus {
    /// Latency of a single beat (one word) on the bus.
    pub beat_latency: Time,
    /// Fixed arbitration overhead per transaction.
    pub arbitration: Time,
}

impl Default for Bus {
    fn default() -> Self {
        Bus {
            beat_latency: Time::from_ns(10),
            arbitration: Time::from_ns(5),
        }
    }
}

impl Bus {
    /// Latency of a transaction of `bytes` bytes.
    pub fn transport(&self, bytes: u32) -> Time {
        let beats = u64::from(bytes.div_ceil(4).max(1));
        Time(self.arbitration.0 + beats * self.beat_latency.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn time_arithmetic() {
        assert_eq!(Time::from_ns(1).0, 1000);
        assert_eq!((Time::from_ns(1) + Time::from_ps(500)).0, 1500);
        assert_eq!(Time::from_ns(3).as_ns(), 3);
    }

    #[test]
    fn queue_orders_by_time() {
        let mut q = EventQueue::new();
        q.schedule(ProcessId(1), Time::from_ns(30));
        q.schedule(ProcessId(2), Time::from_ns(10));
        q.schedule(ProcessId(3), Time::from_ns(20));
        assert_eq!(q.pop().unwrap().1, ProcessId(2));
        assert_eq!(q.pop().unwrap().1, ProcessId(3));
        assert_eq!(q.pop().unwrap().1, ProcessId(1));
        assert_eq!(q.now(), Time::from_ns(30));
        assert!(q.pop().is_none());
    }

    #[test]
    fn delta_cycles_order_within_timestamp() {
        let mut q = EventQueue::new();
        q.schedule(ProcessId(1), Time::from_ns(10));
        let _ = q.pop(); // now = 10ns, delta 0
        q.schedule(ProcessId(2), Time::ZERO); // delta 1 at 10ns
        q.schedule(ProcessId(3), Time::ZERO); // delta 1 at 10ns (later seq)
        q.schedule(ProcessId(4), Time::from_ns(1));
        let (t2, p2) = q.pop().unwrap();
        assert_eq!((t2, p2), (Time::from_ns(10), ProcessId(2)));
        assert_eq!(q.delta_cycle(), 1);
        let (_, p3) = q.pop().unwrap();
        assert_eq!(p3, ProcessId(3));
        let (t4, _) = q.pop().unwrap();
        assert_eq!(t4, Time::from_ns(11));
        assert_eq!(q.delta_cycle(), 0);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(ProcessId(i), Time::from_ns(5));
        }
        for i in 0..10 {
            assert_eq!(q.pop().unwrap().1, ProcessId(i));
        }
    }

    #[test]
    fn schedule_at_rejects_past() {
        let mut q = EventQueue::new();
        q.schedule(ProcessId(0), Time::from_ns(100));
        let _ = q.pop();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            q.schedule_at(ProcessId(0), Time::from_ns(50));
        }));
        assert!(result.is_err());
    }

    struct Counter {
        hits: Rc<RefCell<Vec<(u64, &'static str)>>>,
        name: &'static str,
        period: Time,
        remaining: u32,
    }

    impl Process for Counter {
        fn run(&mut self, now: Time) -> Option<Time> {
            self.hits.borrow_mut().push((now.as_ns(), self.name));
            self.remaining -= 1;
            if self.remaining == 0 {
                None
            } else {
                Some(self.period)
            }
        }
    }

    #[test]
    fn processes_interleave_deterministically() {
        let hits = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.spawn_at(
            Box::new(Counter {
                hits: hits.clone(),
                name: "a",
                period: Time::from_ns(10),
                remaining: 3,
            }),
            Time::ZERO,
        );
        sim.spawn_at(
            Box::new(Counter {
                hits: hits.clone(),
                name: "b",
                period: Time::from_ns(15),
                remaining: 2,
            }),
            Time::ZERO,
        );
        sim.run_to_completion();
        assert_eq!(
            *hits.borrow(),
            vec![(0, "a"), (0, "b"), (10, "a"), (15, "b"), (20, "a"),]
        );
        assert_eq!(sim.now(), Time::from_ns(20));
        assert_eq!(sim.events_processed(), 5);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let hits = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Simulation::new();
        sim.spawn_at(
            Box::new(Counter {
                hits: hits.clone(),
                name: "t",
                period: Time::from_ns(10),
                remaining: 100,
            }),
            Time::ZERO,
        );
        sim.run_until(Time::from_ns(35));
        assert_eq!(hits.borrow().len(), 4); // t = 0, 10, 20, 30
    }

    #[test]
    fn bus_latency_scales_with_beats() {
        let bus = Bus::default();
        let one_word = bus.transport(4);
        let two_words = bus.transport(8);
        let byte = bus.transport(1);
        assert_eq!(byte, one_word, "sub-word access costs one beat");
        assert!(two_words > one_word);
        assert_eq!(
            two_words.0 - one_word.0,
            bus.beat_latency.0,
            "each extra beat adds one beat latency"
        );
    }
}
