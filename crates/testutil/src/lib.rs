//! Shared deterministic pseudo-random generator for the workspace's
//! property tests.
//!
//! No third-party property-testing dependency is available in the build
//! environment, so the property suites draw their cases from this
//! xorshift64* generator instead: fixed seeds keep every failure
//! reproducible, and a single shared implementation keeps the suites'
//! sampling in lockstep (a distribution fix lands everywhere at once).

#![warn(missing_docs)]

/// Deterministic xorshift64* generator for reproducible pseudo-random
/// test cases.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a generator from a seed (0 is mapped to a fixed nonzero
    /// constant — xorshift has no escape from the all-zero state).
    pub fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    /// Next raw 64-bit output.
    ///
    /// (The same xorshift64* step is forked intentionally in
    /// `binsym::strategy::RandomRestart` — product code must not depend on
    /// this test-support crate, and its exploration order must not shift
    /// with test-generator tweaks. Changes here need no mirroring there.)
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next byte (drawn from the well-mixed high half).
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 32) as u8
    }

    /// Uniform-ish value in `[0, n)`. `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform-ish value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo + 1) as u64;
        lo + (self.next_u64() % span) as i64
    }

    /// A vector of `len` random bytes.
    pub fn bytes(&mut self, len: usize) -> Vec<u8> {
        (0..len).map(|_| self.next_u8()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = Rng::new(43);
        assert_ne!(va, (0..16).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            let v = r.range_i64(-2048, 2047);
            assert!((-2048..=2047).contains(&v));
            assert!(r.below(32) < 32);
        }
    }

    #[test]
    fn zero_seed_is_not_degenerate() {
        let mut r = Rng::new(0);
        assert_ne!(r.next_u64(), 0);
    }
}
