//! Quickstart: assemble a tiny RISC-V program, explore it symbolically, and
//! inspect the discovered paths.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The program reads a 32-bit word from the symbolic input region, divides a
//! constant by it, and asserts a property that only fails when the divisor
//! is zero — the RISC-V `DIVU` edge case of the paper's running example.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::Session;
use binsym_repro::isa::Spec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the software under test. Programs mark their symbolic input
    //    with the `__sym_input` symbol and exit via `ecall` (a7 = 93).
    let elf = Assembler::new().assemble(
        r#"
        .data
        .globl __sym_input
__sym_input:
        .word 0                 # y: 4 symbolic bytes

        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)          # y  (symbolic)
        li   a2, 1000           # x = 1000
        divu a3, a2, a1         # z = x / y   (RISC-V: x/0 = 0xffffffff)
        bltu a2, a3, fail       # "x < z" should be impossible... right?
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1              # nonzero exit = assertion failure
        li   a7, 93
        ecall
"#,
    )?;

    // 2. Build a session and explore every feasible path. The defaults are
    //    the paper's engine: depth-first path selection, incremental
    //    bit-blast solver. Swap them with `.strategy(...)`/`.backend(...)`.
    let mut session = Session::builder(Spec::rv32im()).binary(&elf).build()?;
    let summary = session.run_all()?;

    println!("paths explored : {}", summary.paths);
    println!("solver queries : {}", summary.solver_checks);
    println!("instructions   : {}", summary.total_steps);

    // 3. Inspect the bug reports: the fail branch IS reachable, because
    //    division by zero yields all-ones (larger than x).
    for err in &summary.error_paths {
        let y = u32::from_le_bytes([err.input[0], err.input[1], err.input[2], err.input[3]]);
        println!(
            "assertion failure with input y = {y} (exit code {:?})",
            err.exit_code
        );
        assert_eq!(y, 0, "the only failing divisor is zero");
    }
    assert_eq!(summary.error_paths.len(), 1);

    // 4. Or stream paths lazily and stop at the first bug — no solver work
    //    is spent on paths beyond the ones actually consumed.
    let mut session = Session::builder(Spec::rv32im()).binary(&elf).build()?;
    let first_bug = session
        .paths()
        .find_map(|p| p.ok().filter(|p| p.is_error()))
        .expect("the divu bug is found");
    println!(
        "first failing path found after {} total instructions",
        first_bug.steps
    );
    Ok(())
}
