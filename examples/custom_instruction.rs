//! The paper's §IV case study: supporting a custom `MADD` instruction.
//!
//! ```text
//! cargo run --example custom_instruction
//! ```
//!
//! `MADD rd, rs1, rs2, rs3` computes `(rs1 × rs2) + rs3`. Supporting it in
//! the whole toolchain takes exactly two artifacts, both part of the formal
//! specification (and mirroring the paper's Fig. 3 + Fig. 4):
//!
//! 1. the riscv-opcodes YAML encoding description (7 lines),
//! 2. the DSL semantics (a handful of lines of specification code).
//!
//! *No engine changes are needed*: the assembler picks the instruction up
//! from the encoding table, and the symbolic engine interprets the new
//! semantics through the existing language primitives. The IR-lifter
//! baseline, in contrast, rejects the binary — its hand-written translation
//! has to be extended by hand.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::Session;
use binsym_repro::isa::encoding::MADD_YAML;
use binsym_repro::isa::spec::madd_semantics;
use binsym_repro::isa::Spec;
use binsym_repro::lifter::{EngineConfig, LifterExecutor};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Fig. 3: the encoding, in riscv-opcodes YAML ---
    println!("encoding description (Fig. 3):\n{MADD_YAML}");

    // --- Fig. 4: the semantics, as a DSL program ---
    let mut spec = Spec::rv32im();
    let id = spec.register_custom(MADD_YAML, madd_semantics())?;
    println!(
        "registered `{}` as instruction #{}\n",
        spec.name(id),
        id.index()
    );

    // A program exercising MADD on symbolic input: find x with 3x + 7 == 40.
    let elf = Assembler::new().with_table(spec.table().clone()).assemble(
        r#"
        .data
        .globl __sym_input
__sym_input:
        .word 0

        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)          # x (symbolic)
        li   a2, 3
        li   a3, 7
        madd a4, a1, a2, a3     # a4 = x*3 + 7
        li   a5, 40
        beq  a4, a5, found
        li   a0, 0
        li   a7, 93
        ecall
found:
        li   a0, 1
        li   a7, 93
        ecall
"#,
    )?;

    // The formal-semantics engine explores the custom instruction with zero
    // engine changes.
    let mut session = Session::builder(spec).binary(&elf).build()?;
    let summary = session.run_all()?;
    println!("BinSym paths: {}", summary.paths);
    let witness = &summary.error_paths[0].input;
    let x = u32::from_le_bytes([witness[0], witness[1], witness[2], witness[3]]);
    println!("solver found x = {x} with 3x + 7 == 40");
    assert_eq!(3 * x + 7, 40);

    // The lifter-based baseline cannot execute the binary at all.
    let exec = LifterExecutor::new(&elf, EngineConfig::binsec())?;
    let mut baseline = Session::executor_builder(exec).build()?;
    match baseline.run_all() {
        Err(e) => println!("IR lifter baseline fails as expected: {e}"),
        Ok(_) => unreachable!("the hand-written lifter cannot know MADD"),
    }
    Ok(())
}
