//! The paper's Fig. 2: the SMT-LIB solver queries generated for a branch in
//! a binary, derived from the formal ISA semantics.
//!
//! ```text
//! cargo run --example smtlib_query
//! ```
//!
//! Executes the two-instruction snippet `DIVU a1, a0, a1; BLTU a0, a1, fail`
//! symbolically and prints the solver queries the engine poses while
//! reasoning about the `fail` branch, in SMT-LIB v2 (Fig. 2 ③).
//!
//! With the formal DIVU semantics the `runIfElse (rs2 == 0)` guard is itself
//! a branch point, so the engine reasons in two steps, exactly as §III-B
//! describes: *"if a SUT executes a RISC-V DIVU instruction with a symbolic
//! divisor operand, we construct an SMT query to check if it is possible for
//! the divisor to be zero/non-zero"*:
//!
//! 1. on the initial path (divisor ≠ 0) the `fail` branch is infeasible —
//!    division truly shrinks values;
//! 2. flipping the DIVU guard (divisor = 0) makes `z = 0xffffffff`, and on
//!    the re-executed path the `fail` branch *is* taken: the edge case of
//!    the paper's running example.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{Session, SmtLibDump, SymMachine, SymWord, TrailEntry};
use binsym_repro::isa::{Reg, Spec};
use binsym_repro::smt::{smtlib, SatResult, Solver, Term, TermManager};

fn run_snippet(
    tm: &mut TermManager,
    x0: u32,
    y0: u32,
) -> Result<Vec<TrailEntry>, Box<dyn std::error::Error>> {
    let elf = Assembler::new().assemble(
        r#"
_start:
        divu a1, a0, a1
        bltu a0, a1, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1
        li   a7, 93
        ecall
"#,
    )?;
    let mut m = SymMachine::new(Spec::rv32im());
    m.load_elf(&elf);
    let x = tm.var("x", 32);
    let y = tm.var("y", 32);
    m.regs.write(Reg::A0, SymWord::symbolic(x0, x));
    m.regs.write(Reg::A1, SymWord::symbolic(y0, y));
    m.step(tm)?; // DIVU
    m.step(tm)?; // BLTU
    Ok(m.trail)
}

fn check(tm: &mut TermManager, assertions: &[Term]) -> SatResult {
    println!("{}", smtlib::query_to_smtlib(tm, assertions));
    let mut solver = Solver::new();
    for &a in assertions {
        solver.assert_term(tm, a);
    }
    let r = solver.check_sat(tm, &[]);
    println!(
        ";; --> {}\n",
        if r == SatResult::Sat {
            "satisfiable"
        } else {
            "unsatisfiable"
        }
    );
    r
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut tm = TermManager::new();

    // First execution with x = 1000, y = 3: DIVU takes the divisor != 0
    // side, BLTU falls through.
    let trail = run_snippet(&mut tm, 1000, 3)?;
    let conds: Vec<(Term, bool)> = trail
        .iter()
        .map(|e| match *e {
            TrailEntry::Branch { cond, taken, .. } => (cond, taken),
            TrailEntry::Concretize { .. } => unreachable!("no symbolic addresses here"),
        })
        .collect();
    assert_eq!(conds.len(), 2, "DIVU guard + BLTU branch");
    let (divu_guard, divu_taken) = conds[0];
    let (bltu_cond, _) = conds[1];
    assert!(!divu_taken, "concrete divisor 3 is nonzero");

    // Query 1: can the fail branch be taken on this path (divisor != 0)?
    println!(";; query 1: prefix [divisor != 0], flipped branch [x < x/y]");
    let not_zero = tm.not(divu_guard);
    let q1 = check(&mut tm, &[not_zero, bltu_cond]);
    assert_eq!(q1, SatResult::Unsat, "division by nonzero shrinks values");

    // Query 2: flip the DIVU guard itself — is a zero divisor possible?
    println!(";; query 2: flipped DIVU guard [divisor = 0]");
    let q2 = check(&mut tm, &[divu_guard]);
    assert_eq!(q2, SatResult::Sat);

    // Re-execute with the zero divisor: now BLTU is taken concretely, and
    // the path condition of the *taken* fail branch is satisfiable — the
    // query shown in the paper's Fig. 2.
    let trail = run_snippet(&mut tm, 1000, 0)?;
    let assertions: Vec<Term> = trail.iter().map(|e| e.path_term(&mut tm)).collect();
    println!(";; query 3: path condition of the executed fail path (Fig. 2 ③)");
    let q3 = check(&mut tm, &assertions);
    assert_eq!(q3, SatResult::Sat);
    println!(";; the fail branch is reachable via the DIVU division-by-zero semantics");

    // Bonus: the same scripts fall out of a whole exploration for free when
    // the session runs on the `SmtLibDump` backend — every branch-flip
    // query is recorded as a complete SMT-LIB file for offline replay.
    let elf = Assembler::new().assemble(
        r#"
        .data
        .globl __sym_input
__sym_input:
        .word 0, 0
        .text
        .globl _start
_start:
        la   a5, __sym_input
        lw   a0, 0(a5)
        lw   a1, 4(a5)
        divu a2, a0, a1
        bltu a0, a2, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1
        li   a7, 93
        ecall
"#,
    )?;
    let backend = SmtLibDump::new();
    let scripts = backend.scripts();
    let summary = Session::builder(Spec::rv32im())
        .binary(&elf)
        .backend(backend)
        .build()?
        .run_all()?;
    println!(
        ";; exploring the full binary recorded {} replayable scripts over {} paths",
        scripts.len(),
        summary.paths
    );
    assert_eq!(scripts.len() as u64, summary.solver_checks);
    Ok(())
}
