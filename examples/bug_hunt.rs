//! The paper's Fig. 5: how a lifter bug turns into a **false positive** and
//! a **false negative** during SE-based testing.
//!
//! ```text
//! cargo run --example bug_hunt
//! ```
//!
//! The SUT computes `mask = x << 31` and asserts:
//! * if `x == 1`: `mask == 0x80000000` (true — but angr's signed-shamt bug
//!   shifts by −1, making the assertion fail spuriously: false positive);
//! * else: `mask != 0x80000000` (false for other odd `x` — which buggy angr
//!   cannot discover: false negative).

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{ErrorPath, Session};
use binsym_repro::isa::Spec;
use binsym_repro::lifter::{EngineConfig, LifterExecutor};

const PARSE_WORD: &str = r#"
        .data
        .globl __sym_input
__sym_input:
        .word 0

        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)          # x (symbolic)
        slli a2, a1, 31         # mask = x << 31
        li   a3, 1
        li   a4, 0x80000000
        bne  a1, a3, else_case
        beq  a2, a4, ok         # assert(mask == 0x80000000)
        ebreak                  # assertion failure
else_case:
        bne  a2, a4, ok         # assert(mask != 0x80000000)
        ebreak                  # assertion failure
ok:
        li   a0, 0
        li   a7, 93
        ecall
"#;

fn x_of(e: &ErrorPath) -> u32 {
    u32::from_le_bytes([e.input[0], e.input[1], e.input[2], e.input[3]])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let elf = Assembler::new().assemble(PARSE_WORD)?;

    // --- BinSym (accurate formal semantics) ---
    let mut binsym = Session::builder(Spec::rv32im()).binary(&elf).build()?;
    let accurate = binsym.run_all()?;
    println!(
        "BinSym: {} paths, {} failures",
        accurate.paths,
        accurate.error_paths.len()
    );
    for e in &accurate.error_paths {
        println!("  real assertion failure with x = {:#010x}", x_of(e));
        assert_ne!(x_of(e), 1, "x == 1 satisfies its assertion");
        assert_eq!(x_of(e) & 1, 1, "only odd x != 1 reaches the failing assert");
    }
    assert!(
        !accurate.error_paths.is_empty(),
        "the real bug must be found"
    );

    // --- angr persona (five lifter bugs) ---
    let exec = LifterExecutor::new(&elf, EngineConfig::angr())?;
    let mut angr = Session::executor_builder(exec).build()?;
    let buggy = angr.run_all()?;
    println!(
        "angr:   {} paths, {} failures",
        buggy.paths,
        buggy.error_paths.len()
    );

    let false_positive = buggy.error_paths.iter().any(|e| x_of(e) == 1);
    println!("  false positive (spurious failure for x == 1): {false_positive}");
    assert!(false_positive);

    let finds_real_bug = buggy
        .error_paths
        .iter()
        .any(|e| x_of(e) != 1 && x_of(e) & 1 == 1);
    println!("  finds the real bug (odd x != 1):              {finds_real_bug}");
    assert!(!finds_real_bug, "the false negative: buggy angr misses it");
    Ok(())
}
