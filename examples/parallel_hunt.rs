//! Sharded bug hunting with `ParallelSession`: the same builder that runs
//! the paper's sequential engine fans the exploration out across worker
//! threads, each owning a complete engine, exchanging pending paths as
//! plain-data replayable prescriptions.
//!
//! ```text
//! cargo run --release --example parallel_hunt [workers]
//! ```
//!
//! The SUT checks a 4-byte "PIN" digit by digit — a classic DSE workload
//! with an exponential path frontier. The merged summary is deterministic:
//! any worker count produces the identical result, with paths ordered as a
//! sequential depth-first exploration would discover them.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::Session;
use binsym_repro::isa::Spec;

const PIN_CHECK: &str = r#"
        .data
        .globl __sym_input
__sym_input:
        .space 4

        .text
        .globl _start
_start:
        la   s0, __sym_input
        li   s1, 0              # index
        li   s2, 0              # matches
loop:
        li   t0, 4
        beq  s1, t0, done
        add  t1, s0, s1
        lbu  t2, 0(t1)          # digit (symbolic)
        li   t3, 10
        bgeu t2, t3, next       # not a digit: no match
        addi t4, s1, 3          # expected digit: 3 + index
        bne  t2, t4, next
        addi s2, s2, 1
next:
        addi s1, s1, 1
        j    loop
done:
        li   t0, 4
        bne  s2, t0, ok         # all four digits correct?
        ebreak                  # "vault opens": report as a bug witness
ok:
        li   a0, 0
        li   a7, 93
        ecall
"#;

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let elf = Assembler::new().assemble(PIN_CHECK).expect("assembles");

    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .build_parallel()
        .expect("builds");
    println!(
        "exploring with {} workers ({} shard policy, {} backend per query)…",
        session.workers(),
        session.strategy_name(),
        session.backend_name()
    );

    let summary = session.run_all().expect("explores");
    println!(
        "{} paths, {} solver checks, {} instructions",
        summary.paths, summary.solver_checks, summary.total_steps
    );
    for bug in &summary.error_paths {
        println!("PIN found: {:?}", bug.input);
    }
    assert_eq!(
        summary.error_paths.len(),
        1,
        "exactly one PIN opens the vault"
    );
    assert_eq!(summary.error_paths[0].input, vec![3, 4, 5, 6]);

    // The merged record stream is canonical: re-running with any worker
    // count reproduces it byte for byte.
    let first = session.records().to_vec();
    let mut again = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers + 1)
        .build_parallel()
        .expect("builds");
    again.run_all().expect("explores");
    assert_eq!(first, again.records(), "deterministic merge");
    println!("re-run with {} workers: identical records ✓", workers + 1);
}
