//! Coverage-guided bug hunting under a path budget.
//!
//! The [`CoverageGuided`] strategy reads a lock-free [`CoverageMap`] fed
//! by a [`CoverageObserver`]: pending branch flips whose *direction* was
//! never observed are discharged first, so unexplored behaviour — and the
//! bug hiding in it — surfaces long before a depth-first sweep would
//! reach it.
//!
//! ```text
//! cargo run --release --example coverage_hunt [workers]
//! ```
//!
//! The SUT is a little command scanner: a "known command" fast path whose
//! 8 bit-tests span a 256-path subtree, and one rarely-taken escape
//! dispatch that ends in an `ebreak`. Depth-first order drains the fast
//! subtree before ever flipping the shallow escape branch; the
//! coverage-guided session pivots to it as soon as the fast-path branch
//! directions saturate, and finds the bug well inside a budget the
//! depth-first hunt exhausts empty-handed.
//!
//! Two determinism notes, demonstrated at the end: a *sequential* session
//! reproduces its exploration order exactly (the map is single-threaded),
//! and a *parallel* session's merged results are canonical — coverage maps
//! race across workers, but policies only shape scheduling, and truncated
//! runs return the budget-lowest-`PathId` prefix on every schedule.
//!
//! [`CoverageMap`]: binsym_repro::binsym::CoverageMap
//! [`CoverageObserver`]: binsym_repro::binsym::CoverageObserver
//! [`CoverageGuided`]: binsym_repro::binsym::CoverageGuided

use std::sync::Arc;

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{CoverageGuided, CoverageMap, CoverageObserver, Prescription, Session};
use binsym_repro::isa::Spec;

const SCANNER: &str = r#"
        .data
        .globl __sym_input
__sym_input:
        .space 3

        .text
        .globl _start
_start:
        la   s0, __sym_input
        lbu  t0, 0(s0)          # opcode byte (symbolic)

        # The rarely-taken escape dispatch: opcode 0xab with args (2, 3)
        # traps. This is the shallowest branch of every fast-path trail,
        # so depth-first order flips it *last*.
        li   t1, 0xab
        beq  t0, t1, escape

        # The fast path: 8 independent bit-tests over the two argument
        # bytes — a 256-path subtree of boring "known command" behaviour.
        lbu  t2, 1(s0)
        lbu  t3, 2(s0)
        li   s1, 0              # popcount accumulator
        andi t4, t2, 1
        beqz t4, b1
        addi s1, s1, 1
b1:     andi t4, t2, 2
        beqz t4, b2
        addi s1, s1, 1
b2:     andi t4, t2, 4
        beqz t4, b3
        addi s1, s1, 1
b3:     andi t4, t2, 8
        beqz t4, b4
        addi s1, s1, 1
b4:     andi t4, t3, 1
        beqz t4, b5
        addi s1, s1, 1
b5:     andi t4, t3, 2
        beqz t4, b6
        addi s1, s1, 1
b6:     andi t4, t3, 4
        beqz t4, b7
        addi s1, s1, 1
b7:     andi t4, t3, 8
        beqz t4, done
        addi s1, s1, 1
done:
        li   a0, 0
        li   a7, 93
        ecall

escape:
        lbu  t2, 1(s0)
        li   t1, 2
        bne  t2, t1, harmless
        lbu  t3, 2(s0)
        li   t1, 3
        bne  t3, t1, harmless
        ebreak                  # opcode 0xab, args (2, 3): the bug
harmless:
        li   a0, 0
        li   a7, 93
        ecall
"#;

/// Streams a budgeted sequential hunt, returning (paths executed, path
/// index of the first bug if one surfaced within the budget).
fn budgeted_hunt(
    elf: &binsym_repro::elf::ElfFile,
    budget: usize,
    coverage: bool,
) -> (usize, Option<(usize, Vec<u8>)>) {
    let builder = Session::builder(Spec::rv32im()).binary(elf);
    let builder = if coverage {
        let map = CoverageMap::shared_for(elf);
        builder
            .strategy(CoverageGuided::new(Arc::clone(&map)))
            .observer(CoverageObserver::new(map))
    } else {
        builder
    };
    let mut session = builder.build().expect("builds");
    let mut bug = None;
    let mut paths = 0usize;
    for outcome in session.paths().take(budget) {
        let outcome = outcome.expect("executes");
        paths += 1;
        if bug.is_none() && outcome.is_error() {
            bug = Some((paths, outcome.input.clone()));
        }
    }
    (paths, bug)
}

fn main() {
    let workers: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    let elf = Assembler::new().assemble(SCANNER).expect("assembles");
    let budget = 32;

    println!("budgeted sequential hunt ({budget} paths):\n");
    let (dfs_paths, dfs_bug) = budgeted_hunt(&elf, budget, false);
    println!(
        "  dfs              {dfs_paths} paths explored, bug found: {}",
        dfs_bug.is_some()
    );
    let (cov_paths, cov_bug) = budgeted_hunt(&elf, budget, true);
    let (bug_at, witness) = cov_bug.expect("coverage-guided finds the bug in budget");
    println!(
        "  coverage-guided  {cov_paths} paths explored, bug found at path {bug_at}: {witness:?}"
    );
    assert!(
        dfs_bug.is_none(),
        "dfs should drain the fast-path subtree first"
    );
    assert_eq!(witness, vec![0xab, 2, 3]);

    // Sequential coverage snapshots are single-threaded: the run replays
    // identically.
    assert_eq!(budgeted_hunt(&elf, budget, true).1, Some((bug_at, witness)));

    // Parallel coverage-guided exploration: the map races across workers,
    // but the merged (and budget-truncated) records are canonical for any
    // worker count.
    let parallel = |workers: usize| {
        let map = CoverageMap::shared_for(&elf);
        let policy_map = Arc::clone(&map);
        let mut session = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(workers)
            .limit(budget as u64)
            .shard_strategy(move |_| {
                Box::new(CoverageGuided::<Prescription>::new(Arc::clone(&policy_map)))
            })
            .observer_factory(move |_| Box::new(CoverageObserver::new(Arc::clone(&map))))
            .build_parallel()
            .expect("builds");
        session.run_all().expect("explores");
        session.records().to_vec()
    };
    let first = parallel(workers);
    let again = parallel(workers + 3);
    assert_eq!(first, again, "canonical truncated merge");
    println!(
        "\nparallel hunts with {workers} and {} workers: identical {}-path records ✓",
        workers + 3,
        first.len()
    );
}
