//! Property tests on the DSE session's core guarantees:
//!
//! * **completeness law** — `n` independent symbolic byte comparisons yield
//!   exactly `2^n` paths;
//! * **witness soundness** — every error-path input, replayed on the
//!   *concrete* reference interpreter, reproduces the failure;
//! * **path determinism** — exploring twice gives identical summaries.
//!
//! Random cases come from a deterministic in-repo generator (no third-party
//! property-testing dependency is available in the build environment); the
//! fixed seeds keep failures reproducible.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{Session, Summary};
use binsym_repro::interp::{Exit, Machine};
use binsym_repro::isa::Spec;
use binsym_testutil::Rng;

/// Four nonzero comparison thresholds (zero would make `bltu` unsatisfiable).
fn thresholds(rng: &mut Rng) -> [u8; 4] {
    let mut t = [0u8; 4];
    for b in &mut t {
        *b = 1 + rng.next_u8() % 255;
    }
    t
}

/// Builds a program with `n` independent byte comparisons against distinct
/// thresholds, failing (exit 1) iff all comparisons are "below".
fn independent_compares(n: usize, thresholds: &[u8]) -> String {
    let mut body = String::new();
    for (i, &t) in thresholds.iter().take(n).enumerate() {
        let t = t.max(1); // threshold 0 would make bltu unsatisfiable
        body.push_str(&format!(
            r#"
        lbu  a1, {i}(s0)
        li   a2, {t}
        bgeu a1, a2, above_{i}
        addi s1, s1, 1
above_{i}:
"#
        ));
    }
    format!(
        r#"
        .data
        .globl __sym_input
__sym_input: .space {n}
        .text
        .globl _start
_start:
        la   s0, __sym_input
        li   s1, 0
{body}
        li   a2, {n}
        beq  s1, a2, all_below
        li   a0, 0
        li   a7, 93
        ecall
all_below:
        li   a0, 1
        li   a7, 93
        ecall
"#
    )
}

fn explore(src: &str) -> (binsym_elf::ElfFile, Summary) {
    let elf = Assembler::new().assemble(src).expect("assembles");
    let summary = Session::builder(Spec::rv32im())
        .binary(&elf)
        .build()
        .expect("sym input")
        .run_all()
        .expect("explores");
    (elf, summary)
}

#[test]
fn independent_compares_give_power_of_two_paths() {
    let mut rng = Rng::new(0xd5e_0001);
    for case in 0..12 {
        let n = 1 + case % 4;
        let thresholds = thresholds(&mut rng);
        let src = independent_compares(n, &thresholds);
        let (_, s) = explore(&src);
        // 2^n comparison outcomes; the final all-below check is implied by
        // the comparison outcomes, so it adds no paths.
        assert_eq!(s.paths, 1 << n);
        // Exactly one combination (all below) fails.
        assert_eq!(s.error_paths.len(), 1);
    }
}

#[test]
fn error_witnesses_replay_concretely() {
    let mut rng = Rng::new(0xd5e_0002);
    for case in 0..12 {
        let n = 1 + case % 3;
        let thresholds = thresholds(&mut rng);
        let src = independent_compares(n, &thresholds);
        let (elf, s) = explore(&src);
        let base = elf.symbol("__sym_input").expect("symbol").value;
        for err in &s.error_paths {
            let mut m = Machine::new(Spec::rv32im());
            m.load_elf(&elf);
            m.mem.store_slice(base, &err.input);
            let exit = m.run(100_000).expect("runs");
            assert_eq!(
                exit,
                Exit::Exited(err.exit_code.expect("exit path")),
                "witness {:?} must reproduce concretely",
                err.input
            );
        }
    }
}

#[test]
fn exploration_is_deterministic() {
    let mut rng = Rng::new(0xd5e_0003);
    for case in 0..12 {
        let n = 1 + case % 3;
        let thresholds = thresholds(&mut rng);
        let src = independent_compares(n, &thresholds);
        let (_, s1) = explore(&src);
        let (_, s2) = explore(&src);
        assert_eq!(s1.paths, s2.paths);
        assert_eq!(s1.error_paths, s2.error_paths);
        assert_eq!(s1.total_steps, s2.total_steps);
    }
}
