//! Property tests on the DSE explorer's core guarantees:
//!
//! * **completeness law** — `n` independent symbolic byte comparisons yield
//!   exactly `2^n` paths;
//! * **witness soundness** — every error-path input, replayed on the
//!   *concrete* reference interpreter, reproduces the failure;
//! * **path determinism** — exploring twice gives identical summaries.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::Explorer;
use binsym_repro::interp::{Exit, Machine};
use binsym_repro::isa::Spec;
use proptest::prelude::*;

/// Builds a program with `n` independent byte comparisons against distinct
/// thresholds, failing (exit 1) iff all comparisons are "below".
fn independent_compares(n: usize, thresholds: &[u8]) -> String {
    let mut body = String::new();
    for (i, &t) in thresholds.iter().take(n).enumerate() {
        let t = t.max(1); // threshold 0 would make bltu unsatisfiable
        body.push_str(&format!(
            r#"
        lbu  a1, {i}(s0)
        li   a2, {t}
        bgeu a1, a2, above_{i}
        addi s1, s1, 1
above_{i}:
"#
        ));
    }
    format!(
        r#"
        .data
        .globl __sym_input
__sym_input: .space {n}
        .text
        .globl _start
_start:
        la   s0, __sym_input
        li   s1, 0
{body}
        li   a2, {n}
        beq  s1, a2, all_below
        li   a0, 0
        li   a7, 93
        ecall
all_below:
        li   a0, 1
        li   a7, 93
        ecall
"#
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn independent_compares_give_power_of_two_paths(
        n in 1usize..=4,
        thresholds in proptest::collection::vec(1u8..=255, 4),
    ) {
        let src = independent_compares(n, &thresholds);
        let elf = Assembler::new().assemble(&src).expect("assembles");
        let mut ex = Explorer::new(Spec::rv32im(), &elf).expect("sym input");
        let s = ex.run_all().expect("explores");
        // 2^n comparison outcomes; the final all-below check is implied by
        // the comparison outcomes, so it adds no paths.
        prop_assert_eq!(s.paths, 1 << n);
        // Exactly one combination (all below) fails.
        prop_assert_eq!(s.error_paths.len(), 1);
    }

    #[test]
    fn error_witnesses_replay_concretely(
        n in 1usize..=3,
        thresholds in proptest::collection::vec(1u8..=255, 4),
    ) {
        let src = independent_compares(n, &thresholds);
        let elf = Assembler::new().assemble(&src).expect("assembles");
        let mut ex = Explorer::new(Spec::rv32im(), &elf).expect("sym input");
        let s = ex.run_all().expect("explores");
        let base = elf.symbol("__sym_input").expect("symbol").value;
        for err in &s.error_paths {
            let mut m = Machine::new(Spec::rv32im());
            m.load_elf(&elf);
            m.mem.store_slice(base, &err.input);
            let exit = m.run(100_000).expect("runs");
            prop_assert_eq!(
                exit,
                Exit::Exited(err.exit_code.expect("exit path")),
                "witness {:?} must reproduce concretely", err.input
            );
        }
    }

    #[test]
    fn exploration_is_deterministic(
        n in 1usize..=3,
        thresholds in proptest::collection::vec(1u8..=255, 4),
    ) {
        let src = independent_compares(n, &thresholds);
        let elf = Assembler::new().assemble(&src).expect("assembles");
        let mut ex1 = Explorer::new(Spec::rv32im(), &elf).expect("sym input");
        let s1 = ex1.run_all().expect("explores");
        let mut ex2 = Explorer::new(Spec::rv32im(), &elf).expect("sym input");
        let s2 = ex2.run_all().expect("explores");
        prop_assert_eq!(s1.paths, s2.paths);
        prop_assert_eq!(s1.error_paths, s2.error_paths);
        prop_assert_eq!(s1.total_steps, s2.total_steps);
    }
}
