//! Integration test for the paper's Fig. 2: the solver query generated for
//! the `DIVU; BLTU` branch condition, and its satisfiability via the
//! division-by-zero edge case.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{SymMachine, SymWord, TrailEntry};
use binsym_repro::isa::{Reg, Spec};
use binsym_repro::smt::{smtlib, SatResult, Solver, TermManager};

fn snippet_trail(tm: &mut TermManager, x0: u32, y0: u32) -> Vec<TrailEntry> {
    let elf = Assembler::new()
        .assemble(
            r#"
_start:
        divu a1, a0, a1
        bltu a0, a1, fail
        li   a7, 93
        li   a0, 0
        ecall
fail:
        li   a7, 93
        li   a0, 1
        ecall
"#,
        )
        .expect("assembles");
    let mut m = SymMachine::new(Spec::rv32im());
    m.load_elf(&elf);
    let x = tm.var("x", 32);
    let y = tm.var("y", 32);
    m.regs.write(Reg::A0, SymWord::symbolic(x0, x));
    m.regs.write(Reg::A1, SymWord::symbolic(y0, y));
    m.step(tm).expect("divu");
    m.step(tm).expect("bltu");
    m.trail
}

#[test]
fn divu_semantics_fork_on_zero_divisor() {
    let mut tm = TermManager::new();
    let trail = snippet_trail(&mut tm, 1000, 3);
    // Two branch points: the runIfElse guard inside DIVU and the BLTU.
    assert_eq!(trail.len(), 2);
    assert!(trail.iter().all(TrailEntry::is_branch));
}

#[test]
fn fail_branch_unreachable_with_nonzero_divisor() {
    let mut tm = TermManager::new();
    let trail = snippet_trail(&mut tm, 1000, 3);
    let (guard, bltu) = match (&trail[0], &trail[1]) {
        (
            TrailEntry::Branch {
                cond: g, taken: gt, ..
            },
            TrailEntry::Branch {
                cond: b, taken: bt, ..
            },
        ) => {
            assert!(!gt, "divisor 3 != 0");
            assert!(!bt, "1000/3 < 1000");
            (*g, *b)
        }
        other => panic!("unexpected trail {other:?}"),
    };
    let mut solver = Solver::new();
    let not_zero = tm.not(guard);
    solver.assert_term(&mut tm, not_zero);
    // x < x/y with y != 0 is impossible.
    assert_eq!(solver.check_sat(&mut tm, &[bltu]), SatResult::Unsat);
    // ... but the guard itself flips fine.
    let mut solver = Solver::new();
    solver.assert_term(&mut tm, guard);
    assert_eq!(solver.check_sat(&mut tm, &[]), SatResult::Sat);
    assert_eq!(solver.model(&tm).unwrap().value("y"), Some(0));
}

#[test]
fn fail_path_condition_is_satisfiable_with_zero_divisor() {
    let mut tm = TermManager::new();
    let trail = snippet_trail(&mut tm, 1000, 0);
    let assertions: Vec<_> = trail.iter().map(|e| e.path_term(&mut tm)).collect();
    let mut solver = Solver::new();
    for &a in &assertions {
        solver.assert_term(&mut tm, a);
    }
    assert_eq!(solver.check_sat(&mut tm, &[]), SatResult::Sat);
    let m = solver.model(&tm).expect("model");
    assert_eq!(m.value("y"), Some(0));
    assert!(m.value("x").unwrap() < 0xffff_ffff);
}

#[test]
fn query_prints_standard_smtlib() {
    let mut tm = TermManager::new();
    let trail = snippet_trail(&mut tm, 1000, 0);
    let assertions: Vec<_> = trail.iter().map(|e| e.path_term(&mut tm)).collect();
    let script = smtlib::query_to_smtlib(&tm, &assertions);
    assert!(script.starts_with("(set-logic QF_BV)"));
    assert!(script.contains("(declare-const x (_ BitVec 32))"));
    assert!(script.contains("(declare-const y (_ BitVec 32))"));
    assert!(script.contains("bvult"), "the BLTU condition");
    assert!(script.trim_end().ends_with("(check-sat)"));
    // The DIVU division itself only appears on the nonzero-divisor side;
    // with y = 0 the semantics wrote the constant 0xffffffff instead:
    assert!(script.contains("#xffffffff"));
}
