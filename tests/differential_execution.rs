//! Differential property tests across the three independent execution
//! stacks in this repository:
//!
//! 1. the concrete reference interpreter (`binsym-interp`),
//! 2. the symbolic modular interpreter (`binsym` core) driven with fully
//!    concrete-valued symbolic inputs,
//! 3. the (fixed) IR-lifter engine (`binsym-lifter`).
//!
//! Random straight-line RV32IM programs are generated, assembled, and
//! executed on all three; architectural results must agree bit-for-bit.
//! This is the in-repo analog of the paper's translational-correctness
//! argument: three different translations of the same binary must have the
//! same semantics.
//!
//! Random cases come from a deterministic in-repo generator (no third-party
//! property-testing dependency is available in the build environment); the
//! fixed seeds keep failures reproducible.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{NullObserver, PathExecutor, SpecExecutor, StepResult, SymMachine};
use binsym_repro::interp::{Exit, Machine};
use binsym_repro::isa::Spec;
use binsym_repro::lifter::{EngineConfig, LifterBugs, LifterExecutor};
use binsym_repro::smt::TermManager;
use binsym_testutil::Rng;

/// A random 8-byte symbolic-input image.
fn input(rng: &mut Rng) -> [u8; 8] {
    let mut out = [0u8; 8];
    for b in &mut out {
        *b = rng.next_u8();
    }
    out
}

/// ALU register-register mnemonics to sample from.
const ALU_RR: &[&str] = &[
    "add", "sub", "xor", "or", "and", "sll", "srl", "sra", "slt", "sltu", "mul", "mulh", "mulhu",
    "mulhsu", "div", "divu", "rem", "remu",
];

/// ALU register-immediate mnemonics.
const ALU_RI: &[&str] = &["addi", "xori", "ori", "andi", "slti", "sltiu"];

/// Shift-immediate mnemonics.
const SHIFT_I: &[&str] = &["slli", "srli", "srai"];

/// Registers the generator may use freely (avoids s0/s1 bases and a7).
const POOL: &[&str] = &["a0", "a1", "a2", "a3", "a4", "a5", "t0", "t1", "t2"];

/// Builds a random straight-line program from a byte recipe.
fn gen_program(recipe: &[u8]) -> String {
    let mut body = String::new();
    let reg = |b: u8| POOL[(b as usize) % POOL.len()];
    let mut i = 0;
    while i + 4 <= recipe.len() {
        let [op, a, b, c] = [recipe[i], recipe[i + 1], recipe[i + 2], recipe[i + 3]];
        i += 4;
        match op % 6 {
            0 | 1 => {
                let m = ALU_RR[(op as usize / 7) % ALU_RR.len()];
                body.push_str(&format!("        {m} {}, {}, {}\n", reg(a), reg(b), reg(c)));
            }
            2 => {
                let m = ALU_RI[(op as usize / 7) % ALU_RI.len()];
                let imm = i32::from(b as i8) * 13;
                body.push_str(&format!("        {m} {}, {}, {imm}\n", reg(a), reg(c)));
            }
            3 => {
                let m = SHIFT_I[(op as usize / 7) % SHIFT_I.len()];
                body.push_str(&format!("        {m} {}, {}, {}\n", reg(a), reg(c), b % 32));
            }
            4 => {
                // Store then load back from the scratch buffer.
                let off = (b % 60) & !3;
                let (st, ld) = match c % 3 {
                    0 => ("sb", "lbu"),
                    1 => ("sh", "lh"),
                    _ => ("sw", "lw"),
                };
                body.push_str(&format!("        {st} {}, {off}(s1)\n", reg(a)));
                body.push_str(&format!("        {ld} {}, {off}(s1)\n", reg(c)));
            }
            _ => {
                let signed_loads = ["lb", "lbu", "lh", "lhu"];
                let m = signed_loads[(c as usize) % signed_loads.len()];
                let off = b % 8;
                body.push_str(&format!("        {m} {}, {off}(s0)\n", reg(a)));
            }
        }
    }
    format!(
        r#"
        .data
        .globl __sym_input
__sym_input:
        .space 8
scratch:
        .space 64

        .text
        .globl _start
_start:
        la   s0, __sym_input
        la   s1, scratch
        lbu  a0, 0(s0)
        lbu  a1, 1(s0)
        lbu  a2, 2(s0)
        lbu  a3, 3(s0)
        lbu  a4, 4(s0)
        lbu  a5, 5(s0)
{body}
        # fold the architectural state into the exit code
        xor  a0, a0, a1
        xor  a0, a0, a2
        xor  a0, a0, a3
        xor  a0, a0, a4
        xor  a0, a0, a5
        xor  a0, a0, t0
        xor  a0, a0, t1
        xor  a0, a0, t2
        li   a7, 93
        ecall
"#
    )
}

fn run_concrete(src: &str, input: &[u8; 8]) -> (u32, Vec<u32>) {
    let elf = Assembler::new().assemble(src).expect("assembles");
    let mut m = Machine::new(Spec::rv32im());
    m.load_elf(&elf);
    let base = elf.symbol("__sym_input").expect("symbol").value;
    m.mem.store_slice(base, input);
    match m.run(100_000).expect("runs") {
        Exit::Exited(code) => {
            let regs = m.regs.iter().map(|(_, &v)| v).collect();
            (code, regs)
        }
        other => panic!("unexpected exit {other:?}"),
    }
}

fn run_symbolic(src: &str, input: &[u8; 8]) -> (u32, Vec<u32>) {
    let elf = Assembler::new().assemble(src).expect("assembles");
    let mut tm = TermManager::new();
    let mut m = SymMachine::new(Spec::rv32im());
    m.load_elf(&elf);
    let base = elf.symbol("__sym_input").expect("symbol").value;
    m.mark_symbolic(&mut tm, base, 8, "in", input);
    for _ in 0..100_000 {
        match m.step(&mut tm).expect("steps") {
            StepResult::Continue => {}
            StepResult::Exited(code) => {
                let regs = m.regs.iter().map(|(_, v)| v.concrete).collect();
                return (code, regs);
            }
            StepResult::Break => panic!("unexpected break"),
        }
    }
    panic!("out of fuel");
}

fn run_lifter(src: &str, input: &[u8; 8]) -> u32 {
    let elf = Assembler::new().assemble(src).expect("assembles");
    let mut exec = LifterExecutor::new(
        &elf,
        EngineConfig {
            bugs: LifterBugs::NONE,
            cache_blocks: true,
            interp_overhead: 0,
        },
    )
    .expect("sym input");
    let mut tm = TermManager::new();
    let out = exec
        .execute_path(&mut tm, input, 100_000, &mut NullObserver)
        .expect("executes");
    match out.exit {
        StepResult::Exited(code) => code,
        other => panic!("unexpected exit {other:?}"),
    }
}

fn run_spec_executor(src: &str, input: &[u8; 8]) -> u32 {
    let elf = Assembler::new().assemble(src).expect("assembles");
    let mut exec = SpecExecutor::new(Spec::rv32im(), &elf, None).expect("sym input");
    let mut tm = TermManager::new();
    let out = exec
        .execute_path(&mut tm, input, 100_000, &mut NullObserver)
        .expect("executes");
    match out.exit {
        StepResult::Exited(code) => code,
        other => panic!("unexpected exit {other:?}"),
    }
}

#[test]
fn concrete_and_symbolic_interpreters_agree() {
    let mut rng = Rng::new(0xd1ff_0001);
    for _ in 0..48 {
        let len = 8 + (rng.next_u64() as usize) % 56;
        let recipe = rng.bytes(len);
        let input = input(&mut rng);
        let src = gen_program(&recipe);
        let (code_c, regs_c) = run_concrete(&src, &input);
        let (code_s, regs_s) = run_symbolic(&src, &input);
        assert_eq!(code_c, code_s, "exit codes differ\n{src}");
        assert_eq!(regs_c, regs_s, "register files differ\n{src}");
    }
}

#[test]
fn lifter_engine_agrees_with_formal_semantics() {
    let mut rng = Rng::new(0xd1ff_0002);
    for _ in 0..48 {
        let len = 8 + (rng.next_u64() as usize) % 56;
        let recipe = rng.bytes(len);
        let input = input(&mut rng);
        let src = gen_program(&recipe);
        let (code_c, _) = run_concrete(&src, &input);
        let code_l = run_lifter(&src, &input);
        assert_eq!(code_c, code_l, "lifter diverges\n{src}");
        let code_e = run_spec_executor(&src, &input);
        assert_eq!(code_c, code_e, "spec executor diverges\n{src}");
    }
}
