//! Determinism suite for the sharded `ParallelSession` (all five Table I
//! programs).
//!
//! Replaying a prescription is a pure function of the prescription, so a
//! parallel exploration must produce **identical** merged results —
//! path counts, branch counts, per-path records (witness inputs included),
//! and summary contents — across 1/2/4/8 workers, across repeated runs,
//! and across shard scheduling policies (including `RandomRestart` with a
//! fixed seed). Against the *sequential* engine the comparison is
//! model-independent: the same pinned path count, the same multiset of
//! branch-decision fingerprints, the same solver-check and step totals
//! (witness inputs are solver model choices and may legitimately differ
//! between the sequential incremental solver and the fresh replay
//! contexts).
//!
//! The prefix-keyed warm start ([`Session`]`Builder::warm_start`) must be
//! invisible here too: a warm run's records are pinned byte-identical to
//! the cache-off run — the cache may only change wall time, never models.
//!
//! The word-level static-analysis gate
//! ([`Session`]`Builder::static_analysis`) carries the same contract with
//! one calibrated exception: it *removes* whole solver checks (so
//! `solver_checks` shrinks by exactly the eliminated count, which the
//! suite asserts via the observer's `sa_queries_eliminated`), but the
//! merged records — witness bytes included — stay byte-identical to the
//! gate-off run at every worker count, warm or cold.
//!
//! The observability layer (`SessionBuilder::metrics` / `::trace`) carries
//! the same contract with no exceptions at all: phase timers and trace
//! spans observe the run and feed nothing back, so an instrumented run's
//! records and summary — solver checks included — are pinned byte-identical
//! to the uninstrumented run at every worker count.
//!
//! The address-concretization policies (`SessionBuilder::address_policy`)
//! are a *model* knob — `min` and `symbolic:N` may legitimately change
//! which paths exist — so each policy is pinned against its own 1-worker
//! reference: merged records byte-identical across 1/2/4/8 workers × warm
//! × gate, across repeated runs, and across a mid-run kill/resume, on the
//! `table-lookup` benchmark where the policies actually diverge. On the
//! Table I programs every address is concrete, so all policies must
//! reproduce the *default* run byte-for-byte (policy inertness), and the
//! default `eq` policy is contractually the pre-policy engine.
//!
//! The three big programs run under `#[ignore]` so the debug-mode tier-1
//! suite stays fast; CI runs them in release with `--include-ignored`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use binsym_repro::bench::programs::{self, Program};
use binsym_repro::bench::{TABLE_LOOKUP, TABLE_LOOKUP_SYMBOLIC_PATHS};
use binsym_repro::binsym::{
    AddressPolicyKind, CheckpointEvent, ChromeTraceSink, CountingObserver, MetricsRegistry,
    Observer, PathRecord, Prescription, RandomRestart, Session, Summary, TraceSink, TrailEntry,
};
use binsym_repro::isa::Spec;

/// Branch-decision fingerprints of a sequential exploration, in discovery
/// order, plus its summary.
fn sequential_fingerprint(p: &Program) -> (Summary, Vec<Vec<bool>>) {
    let elf = p.build();
    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .build()
        .expect("builds");
    let decisions: Vec<Vec<bool>> = session
        .paths()
        .map(|r| {
            r.expect("path executes")
                .trail
                .iter()
                .filter_map(|e| match *e {
                    TrailEntry::Branch { taken, .. } => Some(taken),
                    _ => None,
                })
                .collect()
        })
        .collect();
    (session.summary(), decisions)
}

/// One parallel run with the given worker count and shard policy seed
/// (`None` = default depth-first policy).
fn parallel_run(p: &Program, workers: usize, seed: Option<u64>) -> (Summary, Vec<PathRecord>) {
    parallel_run_configured(p, workers, seed, None, false)
}

/// Like [`parallel_run`], optionally truncated to a path budget.
fn parallel_run_limited(
    p: &Program,
    workers: usize,
    seed: Option<u64>,
    limit: Option<u64>,
) -> (Summary, Vec<PathRecord>) {
    parallel_run_configured(p, workers, seed, limit, false)
}

/// Full knob set: shard seed, truncation, and the prefix-keyed warm start.
fn parallel_run_configured(
    p: &Program,
    workers: usize,
    seed: Option<u64>,
    limit: Option<u64>,
    warm: bool,
) -> (Summary, Vec<PathRecord>) {
    let elf = p.build();
    let mut builder = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .warm_start(warm);
    if let Some(seed) = seed {
        builder = builder.shard_strategy(move |i| {
            Box::new(RandomRestart::<Prescription>::with_seed(seed + i as u64))
        });
    }
    if let Some(limit) = limit {
        builder = builder.limit(limit);
    }
    let mut session = builder.build_parallel().expect("builds");
    let summary = session.run_all().expect("explores");
    (summary, session.records().to_vec())
}

fn assert_summaries_equal(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.solver_checks, b.solver_checks, "{what}: solver checks");
    assert_summaries_equal_modulo_checks(a, b, what);
}

/// Everything [`assert_summaries_equal`] pins except `solver_checks` —
/// the one summary field the static-analysis gate is *allowed* to change
/// (downward, by exactly the eliminated count).
fn assert_summaries_equal_modulo_checks(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.paths, b.paths, "{what}: paths");
    assert_eq!(a.error_paths, b.error_paths, "{what}: error paths");
    assert_eq!(a.total_steps, b.total_steps, "{what}: total steps");
    assert_eq!(a.max_trail_len, b.max_trail_len, "{what}: max trail len");
    assert_eq!(a.truncated, b.truncated, "{what}: truncated");
}

/// One parallel run with the static-analysis gate explicitly set, plus a
/// shared counting observer so the gate's elimination counters are
/// visible to the accounting assertions.
fn analysis_run(
    p: &Program,
    workers: usize,
    limit: Option<u64>,
    warm: bool,
    analysis: bool,
) -> (Summary, Vec<PathRecord>, CountingObserver) {
    let elf = p.build();
    let counters = Arc::new(Mutex::new(CountingObserver::new()));
    let handle = Arc::clone(&counters);
    let mut builder = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .warm_start(warm)
        .static_analysis(analysis)
        .observer_factory(move |_| Box::new(Arc::clone(&handle)));
    if let Some(limit) = limit {
        builder = builder.limit(limit);
    }
    let mut session = builder.build_parallel().expect("builds");
    let summary = session.run_all().expect("explores");
    let counts = *counters.lock().expect("counters");
    (summary, session.records().to_vec(), counts)
}

/// The static-analysis contract: gate on vs. off, cold and warm, at every
/// worker count — merged records byte-identical, and every solver check
/// the gated run saves accounted for one-to-one by `sa_queries_eliminated`.
fn check_static_analysis(p: &Program, limit: Option<u64>) {
    let (off_summary, off_records, off_counts) = analysis_run(p, 1, limit, false, false);
    if limit.is_none() {
        assert_eq!(off_summary.paths, p.expected_paths, "{}: gate off", p.name);
    }
    assert_eq!(
        off_counts.sa_queries_eliminated, 0,
        "{}: a disabled gate must not screen anything",
        p.name
    );
    for workers in [1usize, 2, 4, 8] {
        for warm in [false, true] {
            let (summary, records, counts) = analysis_run(p, workers, limit, warm, true);
            let what = format!(
                "{} gate on{}, {workers} workers",
                p.name,
                if warm { " + warm" } else { "" }
            );
            assert_eq!(records, off_records, "{what}: byte-identical to gate-off");
            assert_summaries_equal_modulo_checks(&summary, &off_summary, &what);
            if limit.is_none() {
                // Full run: every attempt merges, so the observer's
                // elimination counter explains the check delta exactly.
                assert_eq!(
                    summary.solver_checks + counts.sa_queries_eliminated,
                    off_summary.solver_checks,
                    "{what}: eliminated queries must explain the full check delta"
                );
            } else {
                // Truncated run: merged `solver_checks` stops at the
                // canonical cut, but the observer also sees racer
                // attempts beyond it — only the inequalities are pinned.
                assert!(
                    summary.solver_checks <= off_summary.solver_checks,
                    "{what}: the gate may only remove checks"
                );
                assert!(
                    counts.sa_queries_eliminated
                        >= off_summary.solver_checks - summary.solver_checks,
                    "{what}: eliminations must cover the in-cut check delta"
                );
            }
        }
    }
}

/// The full determinism contract for one benchmark program.
fn check_program(p: &Program) {
    let (seq_summary, seq_decisions) = sequential_fingerprint(p);
    assert_eq!(
        seq_summary.paths, p.expected_paths,
        "{}: sequential",
        p.name
    );
    let seq_branches: u64 = seq_decisions.iter().map(|d| d.len() as u64).sum();
    let mut seq_set = seq_decisions;
    seq_set.sort();

    // Reference: 1 worker, default policy.
    let (ref_summary, ref_records) = parallel_run(p, 1, None);

    for workers in [1usize, 2, 4, 8] {
        let (summary, records) = parallel_run(p, workers, None);
        let what = format!("{} with {workers} workers", p.name);

        // Pinned Table I path count.
        assert_eq!(summary.paths, p.expected_paths, "{what}: pinned count");
        // Identical summary contents and records across worker counts.
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records");

        // Branch counts and the path set agree with the sequential engine.
        let par_branches: u64 = records.iter().map(PathRecord::branches).sum();
        assert_eq!(par_branches, seq_branches, "{what}: total branches");
        let mut par_set: Vec<Vec<bool>> = records.iter().map(|r| r.decisions.clone()).collect();
        par_set.sort();
        assert_eq!(par_set, seq_set, "{what}: path set vs sequential");
        assert_eq!(summary.total_steps, seq_summary.total_steps, "{what}");
        assert_eq!(summary.solver_checks, seq_summary.solver_checks, "{what}");
        assert_eq!(summary.max_trail_len, seq_summary.max_trail_len, "{what}");
        assert_eq!(
            summary.error_paths.len(),
            seq_summary.error_paths.len(),
            "{what}: error path count"
        );
    }

    // Repeated run: byte-identical.
    let (summary, records) = parallel_run(p, 2, None);
    assert_summaries_equal(&summary, &ref_summary, &format!("{} repeated", p.name));
    assert_eq!(records, ref_records, "{}: repeated run records", p.name);

    // RandomRestart with a fixed seed: scheduling changes, results do not.
    for workers in [1usize, 4] {
        let (summary, records) = parallel_run(p, workers, Some(0xdead_beef));
        let what = format!("{} random-restart {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records");
    }
}

/// The truncated-run contract: a `limit`-bounded run returns the canonical
/// `limit`-lowest-`PathId` prefix of the full exploration — byte-identical
/// across 1/2/4/8 workers, repeated runs, and shard policies — instead of
/// whichever `limit` paths happened to finish first on one schedule.
fn check_truncated(p: &Program, limit: u64) {
    let (_, full_records) = parallel_run(p, 1, None);
    assert!(
        full_records.len() as u64 > limit,
        "{}: limit must actually truncate",
        p.name
    );
    let (ref_summary, ref_records) = parallel_run_limited(p, 1, None, Some(limit));
    assert_eq!(ref_summary.paths, limit, "{}: exact count", p.name);
    assert!(ref_summary.truncated, "{}: truncated flag", p.name);
    assert_eq!(
        ref_records.as_slice(),
        &full_records[..limit as usize],
        "{}: truncation is the canonical prefix of the unbounded run",
        p.name
    );

    for workers in [2usize, 4, 8] {
        let (summary, records) = parallel_run_limited(p, workers, None, Some(limit));
        let what = format!("{} truncated, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records");
    }

    // Scheduling policies must not leak into the truncated result either.
    for workers in [1usize, 4] {
        let (summary, records) = parallel_run_limited(p, workers, Some(0xfeed_f00d), Some(limit));
        let what = format!("{} truncated random-restart, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records");
    }

    // Repeated run: byte-identical.
    let (summary, records) = parallel_run_limited(p, 4, None, Some(limit));
    assert_summaries_equal(&summary, &ref_summary, &format!("{} repeated", p.name));
    assert_eq!(records, ref_records, "{}: repeated truncated run", p.name);
}

/// The warm-start contract: `.warm_start(true)` must be invisible in the
/// results — records and summaries byte-identical to the cache-off run at
/// every worker count, with the random shard policy, and on a truncated
/// (`limit`) run. The cache affects wall time only, never models.
///
/// The structural-key pin rides along: warm runs carry a counting
/// observer, and the suite asserts the structurally-keyed context cache
/// actually engaged — contexts were opened, prefix terms were served warm,
/// and entries were re-used across *different* parent inputs — while the
/// records above stay byte-identical. Cross-parent sharing is the whole
/// point of structural keys; this proves it happens and is invisible.
fn check_warm_start(p: &Program, limit: u64) {
    let (ref_summary, ref_records) = parallel_run(p, 1, None);
    for workers in [1usize, 2, 4, 8] {
        // `analysis: true` matches the builder default the cache-off
        // reference runs under (the gate is on unless disabled), so the
        // only knob this loop turns is the warm start itself.
        let (summary, records, counts) = analysis_run(p, workers, None, true, true);
        let what = format!("{} warm, {workers} workers", p.name);
        assert_eq!(summary.paths, p.expected_paths, "{what}: pinned count");
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: byte-identical to cache-off");
        assert!(
            counts.warm_hits + counts.warm_misses > 0,
            "{what}: warm queries fired"
        );
        assert!(
            counts.warm_context_keys > 0,
            "{what}: structural context keys were opened"
        );
        assert!(
            counts.warm_prefix_reused > 0,
            "{what}: retained contexts served prefix terms"
        );
        assert!(
            counts.warm_cross_parent_reuse > 0,
            "{what}: structural keys must share contexts across sibling parents"
        );
    }

    // Scheduling policy changes the hit pattern, not the results.
    let (summary, records) = parallel_run_configured(p, 4, Some(0xbead_cafe), None, true);
    let what = format!("{} warm random-restart", p.name);
    assert_summaries_equal(&summary, &ref_summary, &what);
    assert_eq!(records, ref_records, "{what}: merged records");

    // Truncated warm runs return the same canonical prefix as truncated
    // cache-off runs.
    let (cut_summary, cut_records) = parallel_run_limited(p, 1, None, Some(limit));
    for workers in [1usize, 4] {
        let (summary, records) = parallel_run_configured(p, workers, None, Some(limit), true);
        let what = format!("{} warm truncated, {workers} workers", p.name);
        assert_summaries_equal(&summary, &cut_summary, &what);
        assert_eq!(records, cut_records, "{what}: canonical prefix");
    }
}

/// A collision-free scratch path for checkpoint files.
fn ck_path(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "binsym-determinism-{tag}-{}-{}.ck",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Simulates a kill: copies the live checkpoint file aside when the
/// `fire_at`-th `Written` event fires. Atomic tmp+rename replacement means
/// whatever inode the copy opens is a complete, consistent checkpoint, so
/// resuming from the copy is exactly resuming a process killed at that
/// moment.
#[derive(Debug)]
struct CopyOnWritten {
    src: PathBuf,
    dst: PathBuf,
    fire_at: u64,
    seen: Arc<AtomicU64>,
}
impl Observer for CopyOnWritten {
    fn on_checkpoint(&mut self, event: CheckpointEvent) {
        if let CheckpointEvent::Written { .. } = event {
            if self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.fire_at {
                std::fs::copy(&self.src, &self.dst).expect("copy checkpoint aside");
            }
        }
    }
}

/// The kill/resume contract: a run checkpointing after every merged path,
/// killed after `fire_at` paths (simulated by copying the live checkpoint
/// aside), then resumed from the cut — with the warm cache and the static
/// gate on both sides — must produce merged records byte-identical to the
/// uninterrupted reference at 1/2/4 workers.
fn check_kill_resume(p: &Program, fire_at: u64) {
    check_kill_resume_policy(p, fire_at, AddressPolicyKind::default());
}

/// [`check_kill_resume`] under an explicit address-concretization policy:
/// the checkpoint round-trips the policy's trail (concretization entries
/// included), so the resumed exploration must still be byte-identical to
/// the uninterrupted run under the same policy.
fn check_kill_resume_policy(p: &Program, fire_at: u64, policy: AddressPolicyKind) {
    let elf = p.build();
    let (ref_summary, ref_records, _) = policy_run(p, 1, policy, false, true);
    for workers in [1usize, 2, 4] {
        let live = ck_path("kill-live");
        let copy = ck_path("kill-copy");
        let seen = Arc::new(AtomicU64::new(0));
        let (src, dst, handle) = (live.clone(), copy.clone(), Arc::clone(&seen));
        let mut interrupted = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(workers)
            .warm_start(true)
            .static_analysis(true)
            .address_policy(policy)
            .checkpoint(&live, 1)
            .observer_factory(move |_| {
                Box::new(CopyOnWritten {
                    src: src.clone(),
                    dst: dst.clone(),
                    fire_at,
                    seen: Arc::clone(&handle),
                })
            })
            .build_parallel()
            .expect("builds");
        interrupted.run_all().expect("explores");
        assert!(
            copy.exists(),
            "{workers} workers: mid-run checkpoint copied"
        );
        let mut resumed = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(workers)
            .warm_start(true)
            .static_analysis(true)
            .address_policy(policy)
            .resume(&copy)
            .build_parallel()
            .expect("builds");
        let summary = resumed.run_all().expect("resumes");
        let _ = std::fs::remove_file(&live);
        let _ = std::fs::remove_file(&copy);
        let what = format!("{} ({policy}) killed+resumed, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(
            resumed.records(),
            ref_records.as_slice(),
            "{what}: byte-identical to the uninterrupted run"
        );
    }
}

/// One parallel run under an explicit address-concretization policy, with
/// the warm-start and static-gate knobs, plus the shared counting observer
/// for check accounting.
fn policy_run(
    p: &Program,
    workers: usize,
    policy: AddressPolicyKind,
    warm: bool,
    analysis: bool,
) -> (Summary, Vec<PathRecord>, CountingObserver) {
    let elf = p.build();
    let counters = Arc::new(Mutex::new(CountingObserver::new()));
    let handle = Arc::clone(&counters);
    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .warm_start(warm)
        .static_analysis(analysis)
        .address_policy(policy)
        .observer_factory(move |_| Box::new(Arc::clone(&handle)))
        .build_parallel()
        .expect("builds");
    let summary = session.run_all().expect("explores");
    let counts = *counters.lock().expect("counters");
    (summary, session.records().to_vec(), counts)
}

/// The per-policy determinism contract on one program: against the
/// policy's own gate-off 1-worker reference, every 1/2/4/8-worker × warm
/// × gate combination must merge byte-identical records, with the gate's
/// check savings accounted one-to-one, and a repeated run must reproduce
/// the bytes. `expected_paths` pins the policy's path count.
fn check_policy_matrix(p: &Program, policy: AddressPolicyKind, expected_paths: u64) {
    let (off_summary, off_records, off_counts) = policy_run(p, 1, policy, false, false);
    let what = format!("{} ({policy})", p.name);
    assert_eq!(off_summary.paths, expected_paths, "{what}: pinned count");
    assert_eq!(
        off_counts.sa_queries_eliminated, 0,
        "{what}: a disabled gate must not screen anything"
    );
    for workers in [1usize, 2, 4, 8] {
        for warm in [false, true] {
            for gate in [false, true] {
                let (summary, records, counts) = policy_run(p, workers, policy, warm, gate);
                let what = format!(
                    "{} ({policy}), {workers} workers{}{}",
                    p.name,
                    if warm { " + warm" } else { "" },
                    if gate { " + gate" } else { "" },
                );
                assert_eq!(records, off_records, "{what}: merged records");
                assert_summaries_equal_modulo_checks(&summary, &off_summary, &what);
                if gate {
                    assert_eq!(
                        summary.solver_checks + counts.sa_queries_eliminated,
                        off_summary.solver_checks,
                        "{what}: eliminated queries must explain the full check delta"
                    );
                } else {
                    assert_eq!(
                        summary.solver_checks, off_summary.solver_checks,
                        "{what}: solver checks"
                    );
                }
            }
        }
    }
    // Repeated run: byte-identical.
    let (summary, records, _) = policy_run(p, 2, policy, true, true);
    let what = format!("{} ({policy}) repeated", p.name);
    assert_summaries_equal_modulo_checks(&summary, &off_summary, &what);
    assert_eq!(records, off_records, "{what}: merged records");
}

/// One parallel run with metrics and tracing fully on. Also sanity-checks
/// the collected data: the merged report counts every path and the trace
/// sink saw events.
fn instrumented_run(p: &Program, workers: usize) -> (Summary, Vec<PathRecord>) {
    let elf = p.build();
    let registry = Arc::new(MetricsRegistry::new(workers));
    let sink = Arc::new(ChromeTraceSink::new());
    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .metrics(Arc::clone(&registry))
        .trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .build_parallel()
        .expect("builds");
    let summary = session.run_all().expect("explores");
    let report = registry.report();
    assert_eq!(
        report.paths, summary.paths,
        "{}: metrics count every merged path",
        p.name
    );
    assert!(report.queries > 0, "{}: queries were timed", p.name);
    assert!(!sink.is_empty(), "{}: phases were traced", p.name);
    (summary, session.records().to_vec())
}

/// The observability contract: metrics + tracing on vs. off at every
/// worker count — merged records byte-identical, summaries (solver checks
/// included) identical. Instrumentation changes wall time only.
fn check_instrumentation(p: &Program) {
    let (ref_summary, ref_records) = parallel_run(p, 1, None);
    for workers in [1usize, 2, 4, 8] {
        let (summary, records) = instrumented_run(p, workers);
        let what = format!("{} instrumented, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(
            records, ref_records,
            "{what}: byte-identical to instrumentation-off"
        );
    }
}

#[test]
fn clif_parser_is_deterministic() {
    check_program(&programs::CLIF_PARSER);
}

#[test]
fn clif_parser_instrumentation_is_invisible_in_results() {
    check_instrumentation(&programs::CLIF_PARSER);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_instrumentation_is_invisible_in_results() {
    check_instrumentation(&programs::URI_PARSER);
}

#[test]
fn clif_parser_warm_start_is_invisible_in_results() {
    check_warm_start(&programs::CLIF_PARSER, 23);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn bubble_sort_warm_start_is_invisible_in_results() {
    check_warm_start(&programs::BUBBLE_SORT, 250);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_warm_start_is_invisible_in_results() {
    check_warm_start(&programs::URI_PARSER, 300);
}

#[test]
fn clif_parser_static_analysis_is_invisible_in_results() {
    check_static_analysis(&programs::CLIF_PARSER, None);
}

#[test]
fn bubble_sort_truncated_static_analysis_is_invisible_in_results() {
    // Bubble sort is the Table I program with infeasible flips — the one
    // where the gate actually eliminates queries — so it is the essential
    // on-vs-off pin; truncated so the debug-mode suite stays fast.
    check_static_analysis(&programs::BUBBLE_SORT, Some(120));
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn bubble_sort_static_analysis_is_invisible_in_results() {
    check_static_analysis(&programs::BUBBLE_SORT, None);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_static_analysis_is_invisible_in_results() {
    check_static_analysis(&programs::URI_PARSER, None);
}

#[test]
fn clif_parser_kill_resume_is_byte_identical() {
    check_kill_resume(&programs::CLIF_PARSER, 40);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_kill_resume_is_byte_identical() {
    check_kill_resume(&programs::URI_PARSER, 500);
}

#[test]
fn clif_parser_truncated_run_is_canonical() {
    check_truncated(&programs::CLIF_PARSER, 23);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn bubble_sort_truncated_run_is_canonical() {
    check_truncated(&programs::BUBBLE_SORT, 250);
}

#[test]
fn bubble_sort_is_deterministic() {
    check_program(&programs::BUBBLE_SORT);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_is_deterministic() {
    check_program(&programs::URI_PARSER);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn base64_encode_is_deterministic() {
    check_program(&programs::BASE64_ENCODE);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn insertion_sort_is_deterministic() {
    check_program(&programs::INSERTION_SORT);
}

#[test]
fn table_lookup_is_deterministic_under_every_policy() {
    // The one benchmark whose path set actually depends on the policy:
    // the concretizing policies stop at the pinned 2 paths, the windowed
    // array model enumerates all 6 — each byte-identically at every
    // worker count × warm × gate combination.
    check_policy_matrix(
        &TABLE_LOOKUP,
        AddressPolicyKind::ConcretizeEq,
        TABLE_LOOKUP.expected_paths,
    );
    check_policy_matrix(
        &TABLE_LOOKUP,
        AddressPolicyKind::ConcretizeMin,
        TABLE_LOOKUP.expected_paths,
    );
    check_policy_matrix(
        &TABLE_LOOKUP,
        AddressPolicyKind::Symbolic { window: 64 },
        TABLE_LOOKUP_SYMBOLIC_PATHS,
    );
}

#[test]
fn table_lookup_kill_resume_is_byte_identical_under_every_policy() {
    // The checkpoint wire format carries the concretization trail, so a
    // mid-run kill must resume to identical bytes under every policy —
    // including the symbolic window, whose trail entries are the new kind.
    check_kill_resume_policy(&TABLE_LOOKUP, 1, AddressPolicyKind::ConcretizeEq);
    check_kill_resume_policy(&TABLE_LOOKUP, 1, AddressPolicyKind::ConcretizeMin);
    check_kill_resume_policy(&TABLE_LOOKUP, 2, AddressPolicyKind::Symbolic { window: 64 });
}

#[test]
fn clif_parser_policies_are_inert_on_concrete_addresses() {
    // Every clif-parser address is concrete, so all three policies must
    // reproduce the default run byte-for-byte — `eq` because it *is* the
    // default (the pre-policy engine's §III-B pin), the others because a
    // policy that never fires must be invisible.
    let (ref_summary, ref_records) = parallel_run(&programs::CLIF_PARSER, 1, None);
    for policy in [
        AddressPolicyKind::ConcretizeEq,
        AddressPolicyKind::ConcretizeMin,
        AddressPolicyKind::Symbolic { window: 64 },
    ] {
        let (summary, records, _) = policy_run(&programs::CLIF_PARSER, 2, policy, false, true);
        let what = format!("clif-parser ({policy})");
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: byte-identical to default");
    }
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_policies_are_inert_on_concrete_addresses() {
    let (ref_summary, ref_records) = parallel_run(&programs::URI_PARSER, 1, None);
    for policy in [
        AddressPolicyKind::ConcretizeMin,
        AddressPolicyKind::Symbolic { window: 64 },
    ] {
        let (summary, records, _) = policy_run(&programs::URI_PARSER, 4, policy, true, true);
        let what = format!("uri-parser ({policy})");
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: byte-identical to default");
    }
}
