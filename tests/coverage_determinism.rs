//! Determinism suite for coverage-guided exploration on the shared
//! frontier, plus the coverage-velocity pin of the ablation harness.
//!
//! The [`CoverageGuided`] policy reads a racy (lock-free) coverage map, so
//! in a parallel session its *scheduling* may differ between runs — but a
//! shard policy only decides which worker replays which prescription, and
//! replay is a pure function of the prescription, so the merged records
//! must be **byte-identical** across 1/2/4/8 workers, across repeated
//! runs, and against the default depth-first policy. The same holds for
//! truncated (`limit`-bounded) coverage runs, which must return the
//! canonical `limit`-lowest-`PathId` prefix on every schedule.
//!
//! The prefix-keyed warm start rides the same contract: coverage-guided
//! shard policies give it subtree affinity (consecutive owner pops share
//! prefixes), and its records must stay byte-identical to cache-off runs
//! regardless of the hit pattern.
//!
//! The observability layer (`SessionBuilder::metrics` / `::trace`) stacks
//! on top of all of this without exceptions: an instrumented warm
//! coverage-guided run is pinned byte-identical — solver checks included —
//! to the plain uninstrumented one.
//!
//! The address-concretization policies compose with all of it: a policy
//! changes *which* paths exist (pinned per policy on `table-lookup`), the
//! scheduler only their discovery order, so per-policy merged records are
//! byte-identical across worker counts and shard policies too.
//!
//! The heavy programs run under `#[ignore]` so the debug-mode tier-1 suite
//! stays fast; CI runs them in release with `--include-ignored`.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use binsym_repro::bench::programs::{self, Program};
use binsym_repro::bench::{coverage_trajectory, SearchStrategy};
use binsym_repro::binsym::{
    CheckpointEvent, ChromeTraceSink, CountingObserver, CoverageGuided, CoverageMap,
    CoverageObserver, MetricsRegistry, Observer, PathRecord, Prescription, Session, Summary,
    TraceSink,
};
use binsym_repro::isa::Spec;

/// One parallel run with per-worker coverage observers feeding — and
/// coverage-guided shard policies reading — one shared lock-free map.
fn coverage_run(
    p: &Program,
    workers: usize,
    limit: Option<u64>,
) -> (Summary, Vec<PathRecord>, u64) {
    coverage_run_configured(p, workers, limit, false, true)
}

/// Like [`coverage_run`], optionally with the prefix-keyed warm start —
/// the pairing the cache is designed for: `CoverageGuided`'s subtree
/// affinity keeps a worker's consecutive pops under shared prefixes —
/// and with the static-analysis gate explicitly on or off.
fn coverage_run_configured(
    p: &Program,
    workers: usize,
    limit: Option<u64>,
    warm: bool,
    analysis: bool,
) -> (Summary, Vec<PathRecord>, u64) {
    let (summary, records, covered, _) = coverage_run_counted(p, workers, limit, warm, analysis);
    (summary, records, covered)
}

/// Like [`coverage_run_configured`], additionally composing a shared
/// [`CountingObserver`] next to each worker's coverage observer (the
/// observer-pair impl fans every callback out to both) so the suite can
/// assert the structurally-keyed warm cache engaged.
fn coverage_run_counted(
    p: &Program,
    workers: usize,
    limit: Option<u64>,
    warm: bool,
    analysis: bool,
) -> (Summary, Vec<PathRecord>, u64, CountingObserver) {
    let elf = p.build();
    let map = CoverageMap::shared_for(&elf);
    let policy_map = Arc::clone(&map);
    let observer_map = Arc::clone(&map);
    let counters = Arc::new(Mutex::new(CountingObserver::new()));
    let handle = Arc::clone(&counters);
    let mut builder = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .warm_start(warm)
        .static_analysis(analysis)
        .shard_strategy(move |_| {
            Box::new(CoverageGuided::<Prescription>::new(Arc::clone(&policy_map)))
        })
        .observer_factory(move |_| {
            Box::new((
                Arc::clone(&handle),
                CoverageObserver::new(Arc::clone(&observer_map)),
            ))
        });
    if let Some(limit) = limit {
        builder = builder.limit(limit);
    }
    let mut session = builder.build_parallel().expect("builds");
    assert_eq!(session.strategy_name(), "coverage");
    let summary = session.run_all().expect("explores");
    let counts = *counters.lock().expect("counters");
    (
        summary,
        session.records().to_vec(),
        map.covered_count(),
        counts,
    )
}

/// Reference run: default depth-first shard policy, no coverage plumbing.
fn dfs_run(p: &Program, workers: usize, limit: Option<u64>) -> (Summary, Vec<PathRecord>) {
    let elf = p.build();
    let mut builder = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers);
    if let Some(limit) = limit {
        builder = builder.limit(limit);
    }
    let mut session = builder.build_parallel().expect("builds");
    let summary = session.run_all().expect("explores");
    (summary, session.records().to_vec())
}

fn assert_summaries_equal(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.solver_checks, b.solver_checks, "{what}: solver checks");
    assert_summaries_equal_modulo_checks(a, b, what);
}

/// Everything but `solver_checks` — the one field the static-analysis
/// gate may change (it removes whole checks, never adds or alters them).
fn assert_summaries_equal_modulo_checks(a: &Summary, b: &Summary, what: &str) {
    assert_eq!(a.paths, b.paths, "{what}: paths");
    assert_eq!(a.error_paths, b.error_paths, "{what}: error paths");
    assert_eq!(a.total_steps, b.total_steps, "{what}: total steps");
    assert_eq!(a.max_trail_len, b.max_trail_len, "{what}: max trail len");
    assert_eq!(a.truncated, b.truncated, "{what}: truncated");
}

/// The full-exploration determinism contract: coverage-guided scheduling
/// must not change any merged result.
fn check_program(p: &Program) {
    let (ref_summary, ref_records) = dfs_run(p, 1, None);
    assert_eq!(ref_summary.paths, p.expected_paths, "{}: dfs", p.name);

    let mut final_coverage = None;
    for workers in [1usize, 2, 4, 8] {
        let (summary, records, covered) = coverage_run(p, workers, None);
        let what = format!("{} coverage-guided, {workers} workers", p.name);
        assert_eq!(summary.paths, p.expected_paths, "{what}: pinned count");
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records vs dfs");
        // Full enumeration executes every reachable instruction slot, so
        // the final coverage is policy- and schedule-independent.
        match final_coverage {
            None => final_coverage = Some(covered),
            Some(c) => assert_eq!(c, covered, "{what}: final covered PCs"),
        }
        assert!(covered > 0, "{what}: map was fed");
    }

    // Repeated run (racy map snapshots may reschedule): byte-identical.
    let (summary, records, _) = coverage_run(p, 4, None);
    assert_summaries_equal(&summary, &ref_summary, &format!("{} repeated", p.name));
    assert_eq!(records, ref_records, "{}: repeated run records", p.name);
}

/// The truncated-run contract: a `limit`-bounded coverage-guided run
/// returns the canonical limit-lowest-id prefix on every schedule.
fn check_truncated(p: &Program, limit: u64) {
    let (full_summary, full_records) = dfs_run(p, 1, None);
    assert!(full_summary.paths > limit, "limit must actually truncate");
    let (ref_summary, ref_records, _) = coverage_run(p, 1, Some(limit));
    assert_eq!(ref_summary.paths, limit, "{}: truncated count", p.name);
    assert!(ref_summary.truncated, "{}: truncated flag", p.name);
    assert_eq!(
        ref_records.as_slice(),
        &full_records[..limit as usize],
        "{}: truncation is the canonical prefix of the full run",
        p.name
    );

    for workers in [2usize, 4, 8] {
        let (summary, records, _) = coverage_run(p, workers, Some(limit));
        let what = format!("{} truncated coverage, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records");
    }

    // The dfs policy truncates to the same canonical prefix.
    for workers in [1usize, 4] {
        let (summary, records) = dfs_run(p, workers, Some(limit));
        let what = format!("{} truncated dfs, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: merged records");
    }
}

/// Sequential paths-to-full-coverage under a strategy — the exact
/// ablation-4 metric, via the shared [`coverage_trajectory`] helper.
fn paths_to_full_coverage(p: &Program, strategy: SearchStrategy) -> u64 {
    let (to_full, _, total) = coverage_trajectory(p, strategy);
    assert_eq!(total, p.expected_paths, "{}", p.name);
    to_full
}

/// The warm-start × coverage-guided contract: with `.warm_start(true)` on
/// coverage-guided shard frontiers, merged records stay byte-identical to
/// the plain depth-first cache-off reference at every worker count,
/// including a truncated run.
///
/// The structural-key pin rides along: coverage-guided subtree affinity is
/// exactly the access pattern the structurally-keyed context cache is
/// built for, so the suite asserts contexts were opened, prefix terms were
/// served warm, and entries were re-used across different parent inputs —
/// all while the merged records above stay byte-identical.
fn check_warm_start(p: &Program, limit: u64) {
    let (ref_summary, ref_records) = dfs_run(p, 1, None);
    for workers in [1usize, 2, 4, 8] {
        let (summary, records, covered, counts) =
            coverage_run_counted(p, workers, None, true, true);
        let what = format!("{} warm coverage, {workers} workers", p.name);
        assert_eq!(summary.paths, p.expected_paths, "{what}: pinned count");
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(records, ref_records, "{what}: byte-identical to cache-off");
        assert!(covered > 0, "{what}: map was fed");
        assert!(
            counts.warm_context_keys > 0,
            "{what}: structural context keys were opened"
        );
        assert!(
            counts.warm_prefix_reused > 0,
            "{what}: retained contexts served prefix terms"
        );
        assert!(
            counts.warm_cross_parent_reuse > 0,
            "{what}: structural keys must share contexts across sibling parents"
        );
    }
    let (cut_summary, cut_records, _) = coverage_run(p, 1, Some(limit));
    for workers in [1usize, 4] {
        let (summary, records, _) = coverage_run_configured(p, workers, Some(limit), true, true);
        let what = format!("{} warm truncated coverage, {workers} workers", p.name);
        assert_summaries_equal(&summary, &cut_summary, &what);
        assert_eq!(records, cut_records, "{what}: canonical prefix");
    }
}

/// A coverage-guided run with metrics and tracing fully on, stacked on
/// the warm start — the everything-enabled configuration.
fn instrumented_coverage_run(p: &Program, workers: usize) -> (Summary, Vec<PathRecord>) {
    let elf = p.build();
    let map = CoverageMap::shared_for(&elf);
    let policy_map = Arc::clone(&map);
    let observer_map = Arc::clone(&map);
    let registry = Arc::new(MetricsRegistry::new(workers));
    let sink = Arc::new(ChromeTraceSink::new());
    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .warm_start(true)
        .metrics(Arc::clone(&registry))
        .trace(Arc::clone(&sink) as Arc<dyn TraceSink>)
        .shard_strategy(move |_| {
            Box::new(CoverageGuided::<Prescription>::new(Arc::clone(&policy_map)))
        })
        .observer_factory(move |_| Box::new(CoverageObserver::new(Arc::clone(&observer_map))))
        .build_parallel()
        .expect("builds");
    let summary = session.run_all().expect("explores");
    let report = registry.report();
    assert_eq!(
        report.paths, summary.paths,
        "{}: metrics count every merged path",
        p.name
    );
    assert!(!sink.is_empty(), "{}: phases were traced", p.name);
    (summary, session.records().to_vec())
}

/// The observability × coverage × warm-start contract: metrics + tracing
/// on top of the warm coverage-guided stack must still merge records
/// byte-identical — and summaries, solver checks included, equal — to the
/// plain coverage-guided cache-off run, at every worker count.
fn check_instrumentation(p: &Program) {
    let (ref_summary, ref_records, _) = coverage_run(p, 1, None);
    for workers in [1usize, 2, 4, 8] {
        let (summary, records) = instrumented_coverage_run(p, workers);
        let what = format!("{} instrumented warm coverage, {workers} workers", p.name);
        assert_summaries_equal(&summary, &ref_summary, &what);
        assert_eq!(
            records, ref_records,
            "{what}: byte-identical to instrumentation-off"
        );
    }
}

#[test]
fn clif_parser_coverage_guided_is_deterministic() {
    check_program(&programs::CLIF_PARSER);
}

#[test]
fn clif_parser_instrumented_coverage_is_invisible_in_results() {
    check_instrumentation(&programs::CLIF_PARSER);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_instrumented_coverage_is_invisible_in_results() {
    check_instrumentation(&programs::URI_PARSER);
}

#[test]
fn clif_parser_warm_coverage_is_invisible_in_results() {
    check_warm_start(&programs::CLIF_PARSER, 17);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_warm_coverage_is_invisible_in_results() {
    check_warm_start(&programs::URI_PARSER, 300);
}

/// The warm × coverage × analysis stack: all three features on at once
/// must still merge records byte-identical to the plain depth-first
/// reference with every feature off, at every worker count, full and
/// truncated. (`solver_checks` is compared modulo the gate's
/// eliminations — the gate-off reference counts the screened queries.)
fn check_warm_coverage_analysis(p: &Program, limit: u64) {
    let (ref_summary, ref_records, _) = coverage_run_configured(p, 1, None, false, false);
    assert_eq!(ref_summary.paths, p.expected_paths, "{}: reference", p.name);
    for workers in [1usize, 2, 4, 8] {
        let (summary, records, covered) = coverage_run_configured(p, workers, None, true, true);
        let what = format!("{} warm+coverage+analysis, {workers} workers", p.name);
        assert_summaries_equal_modulo_checks(&summary, &ref_summary, &what);
        assert!(
            summary.solver_checks <= ref_summary.solver_checks,
            "{what}: the gate may only remove checks"
        );
        assert_eq!(records, ref_records, "{what}: byte-identical to all-off");
        assert!(covered > 0, "{what}: map was fed");
    }
    let (cut_summary, cut_records, _) = coverage_run_configured(p, 1, Some(limit), false, false);
    for workers in [1usize, 4] {
        let (summary, records, _) = coverage_run_configured(p, workers, Some(limit), true, true);
        let what = format!(
            "{} warm+coverage+analysis truncated, {workers} workers",
            p.name
        );
        assert_summaries_equal_modulo_checks(&summary, &cut_summary, &what);
        assert_eq!(records, cut_records, "{what}: canonical prefix");
    }
}

/// A collision-free scratch path for checkpoint files.
fn ck_path(tag: &str) -> PathBuf {
    static UNIQUE: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "binsym-coverage-{tag}-{}-{}.ck",
        std::process::id(),
        UNIQUE.fetch_add(1, Ordering::SeqCst)
    ))
}

/// Simulates a kill: copies the live checkpoint file aside when the
/// `fire_at`-th `Written` event fires. Atomic tmp+rename replacement means
/// whatever inode the copy opens is a complete, consistent checkpoint.
#[derive(Debug)]
struct CopyOnWritten {
    src: PathBuf,
    dst: PathBuf,
    fire_at: u64,
    seen: Arc<AtomicU64>,
}
impl Observer for CopyOnWritten {
    fn on_checkpoint(&mut self, event: CheckpointEvent) {
        if let CheckpointEvent::Written { .. } = event {
            if self.seen.fetch_add(1, Ordering::SeqCst) + 1 == self.fire_at {
                std::fs::copy(&self.src, &self.dst).expect("copy checkpoint aside");
            }
        }
    }
}

/// One everything-on run (warm cache, coverage-guided scheduling, static
/// gate) checkpointing every merged path, optionally resuming from a
/// previous cut, with a kill-simulation observer composed next to each
/// worker's coverage observer.
fn persistent_coverage_run(
    p: &Program,
    workers: usize,
    checkpoint: Option<(&PathBuf, &CopyOnWritten)>,
    resume: Option<&PathBuf>,
) -> (Summary, Vec<PathRecord>) {
    let elf = p.build();
    let map = CoverageMap::shared_for(&elf);
    let policy_map = Arc::clone(&map);
    let observer_map = Arc::clone(&map);
    let mut builder = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(workers)
        .warm_start(true)
        .static_analysis(true)
        .shard_strategy(move |_| {
            Box::new(CoverageGuided::<Prescription>::new(Arc::clone(&policy_map)))
        });
    builder = match checkpoint {
        Some((live, kill)) => {
            let (src, dst, fire_at) = (kill.src.clone(), kill.dst.clone(), kill.fire_at);
            let seen = Arc::clone(&kill.seen);
            builder.checkpoint(live, 1).observer_factory(move |_| {
                Box::new((
                    CopyOnWritten {
                        src: src.clone(),
                        dst: dst.clone(),
                        fire_at,
                        seen: Arc::clone(&seen),
                    },
                    CoverageObserver::new(Arc::clone(&observer_map)),
                ))
            })
        }
        None => builder
            .observer_factory(move |_| Box::new(CoverageObserver::new(Arc::clone(&observer_map)))),
    };
    if let Some(path) = resume {
        builder = builder.resume(path);
    }
    let mut session = builder.build_parallel().expect("builds");
    let summary = session.run_all().expect("explores");
    (summary, session.records().to_vec())
}

/// The kill/resume contract under the full feature stack: a warm
/// coverage-guided gated run checkpointing every merged path, killed after
/// `fire_at` paths (simulated by copying the live checkpoint aside), then
/// resumed from the cut under the same stack, must merge records
/// byte-identical to the all-off depth-first reference at 1/2/4 workers.
fn check_kill_resume(p: &Program, fire_at: u64) {
    let (ref_summary, ref_records, _) = coverage_run_configured(p, 1, None, false, false);
    for workers in [1usize, 2, 4] {
        let live = ck_path("kill-live");
        let copy = ck_path("kill-copy");
        let kill = CopyOnWritten {
            src: live.clone(),
            dst: copy.clone(),
            fire_at,
            seen: Arc::new(AtomicU64::new(0)),
        };
        persistent_coverage_run(p, workers, Some((&live, &kill)), None);
        assert!(
            copy.exists(),
            "{workers} workers: mid-run checkpoint copied"
        );
        let (summary, records) = persistent_coverage_run(p, workers, None, Some(&copy));
        let _ = std::fs::remove_file(&live);
        let _ = std::fs::remove_file(&copy);
        let what = format!(
            "{} killed+resumed coverage stack, {workers} workers",
            p.name
        );
        assert_summaries_equal_modulo_checks(&summary, &ref_summary, &what);
        assert!(
            summary.solver_checks <= ref_summary.solver_checks,
            "{what}: the gate may only remove checks"
        );
        assert_eq!(
            records, ref_records,
            "{what}: byte-identical to the uninterrupted all-off run"
        );
    }
}

#[test]
fn clif_parser_kill_resume_under_full_stack_is_byte_identical() {
    check_kill_resume(&programs::CLIF_PARSER, 40);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_kill_resume_under_full_stack_is_byte_identical() {
    check_kill_resume(&programs::URI_PARSER, 500);
}

#[test]
fn clif_parser_warm_coverage_analysis_is_invisible_in_results() {
    check_warm_coverage_analysis(&programs::CLIF_PARSER, 17);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn bubble_sort_warm_coverage_analysis_is_invisible_in_results() {
    // The program where the gate actually eliminates queries, under the
    // full feature stack.
    check_warm_coverage_analysis(&programs::BUBBLE_SORT, 100);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_warm_coverage_analysis_is_invisible_in_results() {
    check_warm_coverage_analysis(&programs::URI_PARSER, 300);
}

#[test]
fn clif_parser_truncated_runs_are_canonical() {
    check_truncated(&programs::CLIF_PARSER, 17);
}

#[test]
fn bubble_sort_truncated_runs_are_canonical() {
    check_truncated(&programs::BUBBLE_SORT, 100);
}

#[test]
fn coverage_guided_reaches_full_coverage_before_dfs() {
    // The acceptance pin: prioritizing flips under uncovered branch sites
    // must surface the last unexecuted instruction in strictly fewer paths
    // than depth-first order on at least one Table I program.
    let p = &programs::CLIF_PARSER;
    let dfs = paths_to_full_coverage(p, SearchStrategy::Dfs);
    let coverage = paths_to_full_coverage(p, SearchStrategy::Coverage);
    assert!(
        coverage < dfs,
        "coverage-guided must reach full coverage first (coverage {coverage} vs dfs {dfs})"
    );
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn bubble_sort_coverage_guided_is_deterministic() {
    check_program(&programs::BUBBLE_SORT);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_coverage_guided_is_deterministic() {
    check_program(&programs::URI_PARSER);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn uri_parser_truncated_runs_are_canonical() {
    check_truncated(&programs::URI_PARSER, 300);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn base64_encode_coverage_guided_is_deterministic() {
    check_program(&programs::BASE64_ENCODE);
}

#[test]
#[ignore = "heavy: run in release (CI runs with --include-ignored)"]
fn insertion_sort_coverage_guided_is_deterministic() {
    check_program(&programs::INSERTION_SORT);
}

#[test]
fn table_lookup_coverage_guided_is_deterministic_under_every_policy() {
    // Coverage-guided scheduling composed with an address-concretization
    // policy: the policy decides which paths exist (pinned per policy),
    // the scheduler only their discovery order, so the merged records must
    // match the depth-first reference under the same policy byte-for-byte
    // at every worker count — and the windowed model must actually reach
    // full coverage through the coverage-guided frontier.
    use binsym_repro::bench::{TABLE_LOOKUP, TABLE_LOOKUP_SYMBOLIC_PATHS};
    use binsym_repro::binsym::AddressPolicyKind;

    let elf = TABLE_LOOKUP.build();
    for (policy, expected) in [
        (AddressPolicyKind::ConcretizeEq, TABLE_LOOKUP.expected_paths),
        (
            AddressPolicyKind::ConcretizeMin,
            TABLE_LOOKUP.expected_paths,
        ),
        (
            AddressPolicyKind::Symbolic { window: 64 },
            TABLE_LOOKUP_SYMBOLIC_PATHS,
        ),
    ] {
        let mut dfs = Session::builder(Spec::rv32im())
            .binary(&elf)
            .workers(1)
            .address_policy(policy)
            .build_parallel()
            .expect("builds");
        let ref_summary = dfs.run_all().expect("explores");
        assert_eq!(ref_summary.paths, expected, "{policy}: pinned count");
        let ref_records = dfs.records().to_vec();

        for workers in [1usize, 2, 4] {
            let map = CoverageMap::shared_for(&elf);
            let policy_map = Arc::clone(&map);
            let observer_map = Arc::clone(&map);
            let mut session = Session::builder(Spec::rv32im())
                .binary(&elf)
                .workers(workers)
                .address_policy(policy)
                .shard_strategy(move |_| {
                    Box::new(CoverageGuided::<Prescription>::new(Arc::clone(&policy_map)))
                })
                .observer_factory(move |_| {
                    Box::new(CoverageObserver::new(Arc::clone(&observer_map)))
                })
                .build_parallel()
                .expect("builds");
            let summary = session.run_all().expect("explores");
            let what = format!("table-lookup ({policy}), {workers} workers");
            assert_summaries_equal(&summary, &ref_summary, &what);
            assert_eq!(
                session.records(),
                ref_records.as_slice(),
                "{what}: merged records"
            );
            let full = map.covered_count() == map.tracked_slots();
            assert_eq!(
                full,
                matches!(policy, AddressPolicyKind::Symbolic { .. }),
                "{what}: only the windowed model reaches full coverage"
            );
        }
    }
}
