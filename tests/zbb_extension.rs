//! End-to-end tests for the Zbb ratified-extension case study: sixteen
//! bit-manipulation instructions added purely at the specification level
//! flow through the assembler, the concrete interpreter, and the symbolic
//! engine without any tool changes.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::Session;
use binsym_repro::interp::{Exit, Machine};
use binsym_repro::isa::spec::zbb;

fn run_concrete(src: &str) -> u32 {
    let spec = zbb::rv32im_zbb();
    let elf = Assembler::new()
        .with_table(spec.table().clone())
        .assemble(src)
        .expect("assembles");
    let mut m = Machine::new(spec);
    m.load_elf(&elf);
    match m.run(100_000).expect("runs") {
        Exit::Exited(code) => code,
        other => panic!("unexpected exit {other:?}"),
    }
}

#[test]
fn clz_ctz_cpop_golden_values() {
    let cases = [
        // (input, clz, ctz, cpop)
        (0x0000_0001u32, 31u32, 0u32, 1u32),
        (0x8000_0000, 0, 31, 1),
        (0x0000_0000, 32, 32, 0),
        (0xffff_ffff, 0, 0, 32),
        (0x00f0_0000, 8, 20, 4),
        (0x0000_6000, 17, 13, 2),
    ];
    for (x, clz, ctz, cpop) in cases {
        let src = format!(
            r#"
_start:
        li   a1, {x}
        clz  a2, a1
        ctz  a3, a1
        cpop a4, a1
        li   t0, {clz}
        bne  a2, t0, fail
        li   t0, {ctz}
        bne  a3, t0, fail
        li   t0, {cpop}
        bne  a4, t0, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1
        li   a7, 93
        ecall
"#
        );
        assert_eq!(run_concrete(&src), 0, "x = {x:#010x}");
    }
}

#[test]
fn rotates_and_minmax() {
    let src = r#"
_start:
        li   a1, 0x80000001
        li   a2, 4
        rol  a3, a1, a2          # 0x00000018
        li   t0, 0x18
        bne  a3, t0, fail
        ror  a3, a1, a2          # 0x18000000
        li   t0, 0x18000000
        bne  a3, t0, fail
        rori a3, a1, 1           # 0xc0000000
        li   t0, 0xc0000000
        bne  a3, t0, fail
        li   a1, -5
        li   a2, 3
        max  a3, a1, a2          # signed max = 3
        li   t0, 3
        bne  a3, t0, fail
        maxu a3, a1, a2          # unsigned max = 0xfffffffb
        li   t0, -5
        bne  a3, t0, fail
        min  a3, a1, a2          # signed min = -5
        li   t0, -5
        bne  a3, t0, fail
        minu a3, a1, a2          # unsigned min = 3
        li   t0, 3
        bne  a3, t0, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1
        li   a7, 93
        ecall
"#;
    assert_eq!(run_concrete(src), 0);
}

#[test]
fn logic_and_extension_ops() {
    let src = r#"
_start:
        li   a1, 0xff00ff00
        li   a2, 0x0ff00ff0
        andn a3, a1, a2          # a1 & !a2 = 0xf000f000
        li   t0, 0xf000f000
        bne  a3, t0, fail
        orn  a3, a1, a2          # a1 | !a2 = 0xff0fff0f
        li   t0, 0xff0fff0f
        bne  a3, t0, fail
        xnor a3, a1, a2          # ~(a1 ^ a2) = 0x0f0f0f0f
        li   t0, 0x0f0f0f0f
        bne  a3, t0, fail
        li   a1, 0x1234ff80
        sext.b a3, a1            # 0xffffff80
        li   t0, 0xffffff80
        bne  a3, t0, fail
        sext.h a3, a1            # 0xffffff80
        li   t0, 0xffffff80
        bne  a3, t0, fail
        zext.h a3, a1            # 0x0000ff80
        li   t0, 0x0000ff80
        bne  a3, t0, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1
        li   a7, 93
        ecall
"#;
    assert_eq!(run_concrete(src), 0);
}

#[test]
fn symbolic_popcount_constraint_solved() {
    // Find an input byte with exactly 5 bits set — the solver must produce
    // a witness through the branch-free popcount term.
    let spec = zbb::rv32im_zbb();
    let elf = Assembler::new()
        .with_table(spec.table().clone())
        .assemble(
            r#"
        .data
        .globl __sym_input
__sym_input: .byte 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lbu  a1, 0(a0)
        cpop a2, a1
        li   a3, 5
        beq  a2, a3, witness
        li   a0, 0
        li   a7, 93
        ecall
witness:
        li   a0, 1
        li   a7, 93
        ecall
"#,
        )
        .expect("assembles");
    let s = Session::builder(spec)
        .binary(&elf)
        .build()
        .expect("sym input")
        .run_all()
        .expect("explores");
    assert_eq!(s.paths, 2);
    assert_eq!(s.error_paths.len(), 1);
    let byte = s.error_paths[0].input[0];
    assert_eq!(
        byte.count_ones(),
        5,
        "witness {byte:#04x} must have 5 set bits"
    );
}

#[test]
fn disassembler_covers_zbb() {
    let spec = zbb::rv32im_zbb();
    // clz a2, a1
    let raw = 0x6000_1013 | (12 << 7) | (11 << 15);
    let text = binsym_repro::isa::disasm::disassemble(spec.table(), raw, 0).expect("disassembles");
    assert_eq!(text, "clz a2, a1");
}
