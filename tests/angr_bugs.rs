//! Differential tests for the five angr lifter bugs of the paper's §V-A.
//!
//! For each bug a directed SUT distinguishes correct from buggy semantics:
//! the program has a path that is reachable under the real ISA semantics
//! but not under the buggy translation (or vice versa). Three engines are
//! compared per SUT:
//!
//! * BinSym (formal semantics)           — ground truth,
//! * the fixed lifter (BINSEC persona)   — must agree with BinSym,
//! * a lifter with exactly one bug       — must diverge as documented.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{Session, Summary};
use binsym_repro::isa::Spec;
use binsym_repro::lifter::{EngineConfig, LifterBugs, LifterExecutor};

fn explore_spec(src: &str) -> Summary {
    let elf = Assembler::new().assemble(src).expect("assembles");
    Session::builder(Spec::rv32im())
        .binary(&elf)
        .build()
        .expect("sym input")
        .run_all()
        .expect("explores")
}

fn explore_lifter(src: &str, bugs: LifterBugs) -> Summary {
    let elf = Assembler::new().assemble(src).expect("assembles");
    let exec = LifterExecutor::new(
        &elf,
        EngineConfig {
            bugs,
            cache_blocks: true,
            interp_overhead: 0,
        },
    )
    .expect("sym input");
    Session::executor_builder(exec)
        .build()
        .expect("builds")
        .run_all()
        .expect("explores")
}

/// Asserts the invariants shared by all five bug scenarios.
fn assert_divergence(src: &str, bugs: LifterBugs) {
    let spec = explore_spec(src);
    let fixed = explore_lifter(src, LifterBugs::NONE);
    assert_eq!(
        spec.paths, fixed.paths,
        "fixed lifter must agree with the formal semantics"
    );
    assert_eq!(
        spec.error_paths, fixed.error_paths,
        "fixed lifter must find the same failures"
    );
    let buggy = explore_lifter(src, bugs);
    assert!(
        buggy.paths != spec.paths || buggy.error_paths != spec.error_paths,
        "the buggy lifter must diverge (paths {} vs {}, errors {} vs {})",
        buggy.paths,
        spec.paths,
        buggy.error_paths.len(),
        spec.error_paths.len(),
    );
}

/// Bug 1: SRA modeled as a logical shift. `(-2) >>a 1 == -1`; the buggy
/// engine computes a large positive value, flipping the branch.
#[test]
fn bug1_sra_modeled_as_logical_shift() {
    let src = r#"
        .data
        .globl __sym_input
__sym_input: .byte 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lbu  a1, 0(a0)
        andi a1, a1, 1        # k in {0, 1} (symbolic)
        li   a2, -2
        sra  a3, a2, a1       # -2 >>a k: always negative
        bltz a3, ok           # reachable only with a correct SRA
        ebreak                 # buggy engines report this "failure"
ok:
        li   a0, 0
        li   a7, 93
        ecall
"#;
    assert_divergence(
        src,
        LifterBugs {
            sra_logical: true,
            ..LifterBugs::NONE
        },
    );
    // The correct engines never reach the ebreak.
    assert!(explore_spec(src).error_paths.is_empty());
}

/// Bug 2: R-type shifts use the rs2 register *index* (t4 = x29) instead of
/// the register value.
#[test]
fn bug2_shift_amount_from_register_index() {
    let src = r#"
        .data
        .globl __sym_input
__sym_input: .byte 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lbu  t3, 0(a0)
        andi t3, t3, 1        # value in {0,1}
        li   t0, 4
        sll  t1, t0, t3       # 4 << {0,1} = {4, 8}; buggy: 4 << 29
        li   t2, 8
        bgtu t1, t2, impossible
        li   a0, 0
        li   a7, 93
        ecall
impossible:
        ebreak
"#;
    assert_divergence(
        src,
        LifterBugs {
            shift_uses_reg_index: true,
            ..LifterBugs::NONE
        },
    );
}

/// Bug 3: loads do not sign-/zero-extend correctly. A signed byte load of
/// input can be negative only with correct sign extension.
#[test]
fn bug3_load_extension() {
    let src = r#"
        .data
        .globl __sym_input
__sym_input: .byte 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lb   a1, 0(a0)
        bltz a1, negative
        li   a0, 0
        li   a7, 93
        ecall
negative:
        li   a0, 0
        li   a7, 93
        ecall
"#;
    assert_divergence(
        src,
        LifterBugs {
            load_extension: true,
            ..LifterBugs::NONE
        },
    );
    assert_eq!(explore_spec(src).paths, 2);
    let buggy = explore_lifter(
        src,
        LifterBugs {
            load_extension: true,
            ..LifterBugs::NONE
        },
    );
    assert_eq!(buggy.paths, 1, "the negative path is lost");
}

/// Bug 4: I-type shift amounts treated as signed 5-bit values — the paper's
/// Fig. 5 scenario (shift by 31 becomes shift by "-1").
#[test]
fn bug4_shamt_signed() {
    let src = r#"
        .data
        .globl __sym_input
__sym_input: .word 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)
        slli a2, a1, 31       # mask = x << 31
        li   a3, 1
        li   a4, 0x80000000
        bne  a1, a3, else_case
        beq  a2, a4, ok       # x == 1 -> mask must be 0x80000000
        ebreak
else_case:
        bne  a2, a4, ok       # x != 1 -> mask may still be 0x80000000!
        ebreak
ok:
        li   a0, 0
        li   a7, 93
        ecall
"#;
    assert_divergence(
        src,
        LifterBugs {
            shamt_signed: true,
            ..LifterBugs::NONE
        },
    );
    // Correct engines: the real failure exists (x odd, != 1) and x == 1 is
    // clean. Buggy engine: exactly the opposite (false positive + false
    // negative), as in the paper's Fig. 5.
    let spec = explore_spec(src);
    let x_of = |e: &binsym_repro::binsym::ErrorPath| {
        u32::from_le_bytes([e.input[0], e.input[1], e.input[2], e.input[3]])
    };
    assert!(spec.error_paths.iter().all(|e| x_of(e) != 1));
    assert!(!spec.error_paths.is_empty());
    let buggy = explore_lifter(
        src,
        LifterBugs {
            shamt_signed: true,
            ..LifterBugs::NONE
        },
    );
    assert!(
        buggy.error_paths.iter().any(|e| x_of(e) == 1),
        "false positive"
    );
    assert!(
        buggy.error_paths.iter().all(|e| x_of(e) == 1),
        "false negative: the real failure is missed"
    );
}

/// Bug 5: signed comparisons compare unsigned: `-1 < 1` flips.
#[test]
fn bug5_signed_compare_unsigned() {
    let src = r#"
        .data
        .globl __sym_input
__sym_input: .byte 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lbu  a1, 0(a0)
        andi a1, a1, 1
        neg  a2, a1           # a2 in {0, -1} (symbolic)
        li   a3, 1
        blt  a2, a3, ok       # signed: always taken
        ebreak                 # unsigned-compare bug reports a "failure"
ok:
        li   a0, 0
        li   a7, 93
        ecall
"#;
    assert_divergence(
        src,
        LifterBugs {
            signed_cmp_unsigned: true,
            ..LifterBugs::NONE
        },
    );
    assert!(explore_spec(src).error_paths.is_empty());
    let buggy = explore_lifter(
        src,
        LifterBugs {
            signed_cmp_unsigned: true,
            ..LifterBugs::NONE
        },
    );
    assert!(!buggy.error_paths.is_empty(), "spurious failure reported");
}

/// All five bugs together (the shipped angr persona) still explore the
/// bug-neutral programs identically.
#[test]
fn all_bugs_neutral_on_unsigned_code() {
    let src = r#"
        .data
        .globl __sym_input
__sym_input: .byte 0, 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        lbu  a1, 0(a0)
        lbu  a2, 1(a0)
        bltu a1, a2, less
        li   a0, 0
        li   a7, 93
        ecall
less:
        li   a0, 0
        li   a7, 93
        ecall
"#;
    let spec = explore_spec(src);
    let buggy = explore_lifter(src, LifterBugs::ANGR);
    assert_eq!(spec.paths, buggy.paths);
    assert_eq!(spec.paths, 2);
}
