//! Integration test for the paper's §IV case study: the custom `MADD`
//! instruction is supported end-to-end — encoding registration (Fig. 3),
//! DSL semantics (Fig. 4), assembly, concrete execution, and symbolic
//! exploration — without modifying any engine.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::Session;
use binsym_repro::interp::{Exit, Machine};
use binsym_repro::isa::encoding::MADD_YAML;
use binsym_repro::isa::spec::madd_semantics;
use binsym_repro::isa::Spec;

fn madd_spec() -> Spec {
    let mut spec = Spec::rv32im();
    spec.register_custom(MADD_YAML, madd_semantics())
        .expect("registers");
    spec
}

const MADD_PROGRAM: &str = r#"
        .data
        .globl __sym_input
__sym_input:
        .word 0

        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)           # x (symbolic)
        li   a2, 5
        li   a3, 100
        madd a4, a1, a2, a3      # a4 = 5x + 100
        li   a5, 1100
        beq  a4, a5, target
        li   a0, 0
        li   a7, 93
        ecall
target:
        li   a0, 1
        li   a7, 93
        ecall
"#;

#[test]
fn madd_assembles_from_spec_table() {
    let spec = madd_spec();
    let elf = Assembler::new()
        .with_table(spec.table().clone())
        .assemble(MADD_PROGRAM)
        .expect("assembles with the extended table");
    // The plain RV32IM assembler must reject it.
    assert!(Assembler::new().assemble(MADD_PROGRAM).is_err());
    assert!(elf.symbol("_start").is_some());
}

#[test]
fn madd_concrete_execution() {
    let spec = madd_spec();
    let elf = Assembler::new()
        .with_table(spec.table().clone())
        .assemble(MADD_PROGRAM)
        .expect("assembles");
    let mut m = Machine::new(spec);
    m.load_elf(&elf);
    let base = elf.symbol("__sym_input").unwrap().value;
    m.mem.store_u32(base, 200); // 5*200 + 100 = 1100
    assert_eq!(m.run(1000).expect("runs"), Exit::Exited(1));
}

#[test]
fn madd_symbolic_exploration_solves_for_input() {
    let spec = madd_spec();
    let elf = Assembler::new()
        .with_table(spec.table().clone())
        .assemble(MADD_PROGRAM)
        .expect("assembles");
    let s = Session::builder(spec)
        .binary(&elf)
        .build()
        .expect("sym input")
        .run_all()
        .expect("explores");
    assert_eq!(s.paths, 2);
    assert_eq!(s.error_paths.len(), 1, "the beq-taken path exits 1");
    let w = &s.error_paths[0].input;
    let x = u32::from_le_bytes([w[0], w[1], w[2], w[3]]);
    assert_eq!(
        x.wrapping_mul(5).wrapping_add(100),
        1100,
        "the solver must find a witness for 5x + 100 == 1100 (x = {x})"
    );
}

#[test]
fn madd_wide_multiplication_truncates() {
    // (rs1 sext 64 * rs2 sext 64) truncated to 32 bits, plus rs3 — verify
    // the Fig. 4 semantics on an overflow case concretely.
    let spec = madd_spec();
    let elf = Assembler::new()
        .with_table(spec.table().clone())
        .assemble(
            r#"
_start:
        li   a1, 0x10000
        li   a2, 0x10000
        li   a3, 7
        madd a4, a1, a2, a3     # (2^32 mod 2^32) + 7 = 7
        mv   a0, a4
        li   a7, 93
        ecall
"#,
        )
        .expect("assembles");
    let mut m = Machine::new(spec);
    m.load_elf(&elf);
    assert_eq!(m.run(100).expect("runs"), Exit::Exited(7));
}
