//! Integration tests for the `Session` builder API: builder misuse, the
//! lazy `paths()` iterator vs. `run_all()`, and path-selection strategies.

use binsym_repro::asm::Assembler;
use binsym_repro::binsym::{
    Bfs, BitblastBackend, Dfs, Error, PathOutcome, RandomRestart, Session, SmtLibDump,
};
use binsym_repro::elf::ElfFile;
use binsym_repro::isa::Spec;

/// The quickstart example's DIVU program (the paper's running example):
/// y == 0 makes 1000 / y overflow to 0xffffffff and the assert fail.
const QUICKSTART_DIVU: &str = r#"
        .data
        .globl __sym_input
__sym_input:
        .word 0                 # y: 4 symbolic bytes

        .text
        .globl _start
_start:
        la   a0, __sym_input
        lw   a1, 0(a0)          # y  (symbolic)
        li   a2, 1000           # x = 1000
        divu a3, a2, a1         # z = x / y
        bltu a2, a3, fail
        li   a0, 0
        li   a7, 93
        ecall
fail:
        li   a0, 1
        li   a7, 93
        ecall
"#;

/// Two sequential symbolic byte comparisons: 4 paths, and the flip order
/// distinguishes depth-first from breadth-first selection.
const TWO_COMPARES: &str = r#"
        .data
        .globl __sym_input
__sym_input: .byte 0, 0
        .text
        .globl _start
_start:
        la   a0, __sym_input
        li   a2, 100
        lbu  a1, 0(a0)
        bltu a1, a2, c1
c1:     lbu  a1, 1(a0)
        bltu a1, a2, c2
c2:     li   a0, 0
        li   a7, 93
        ecall
"#;

fn assemble(src: &str) -> ElfFile {
    Assembler::new().assemble(src).expect("assembles")
}

#[test]
fn builder_rejects_missing_binary() {
    let err = Session::builder(Spec::rv32im()).build().unwrap_err();
    assert!(matches!(err, Error::MissingBinary), "got {err:?}");
    assert!(err.to_string().contains("binary"));
}

#[test]
fn builder_rejects_zero_path_limit() {
    let elf = assemble(QUICKSTART_DIVU);
    let err = Session::builder(Spec::rv32im())
        .binary(&elf)
        .limit(0)
        .build()
        .unwrap_err();
    assert!(matches!(err, Error::InvalidConfig { .. }), "got {err:?}");
    assert!(err.to_string().contains("path limit"));
}

#[test]
fn paths_iterator_is_equivalent_to_run_all_on_quickstart() {
    let elf = assemble(QUICKSTART_DIVU);

    // Batch exploration.
    let summary = Session::builder(Spec::rv32im())
        .binary(&elf)
        .build()
        .expect("builds")
        .run_all()
        .expect("explores");

    // Streaming exploration of a fresh session.
    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .build()
        .expect("builds");
    let outcomes: Vec<PathOutcome> = session.paths().map(|r| r.expect("path runs")).collect();

    assert_eq!(outcomes.len() as u64, summary.paths);
    assert_eq!(
        outcomes.iter().map(|o| o.steps).sum::<u64>(),
        summary.total_steps
    );
    let streamed_errors: Vec<&PathOutcome> = outcomes.iter().filter(|o| o.is_error()).collect();
    assert_eq!(streamed_errors.len(), summary.error_paths.len());
    assert_eq!(summary.error_paths.len(), 1, "the divu bug");
    assert_eq!(streamed_errors[0].input, summary.error_paths[0].input);
    // The streaming session's accumulated summary matches the batch one.
    let s2 = session.summary();
    assert_eq!(s2.paths, summary.paths);
    assert_eq!(s2.solver_checks, summary.solver_checks);
    assert_eq!(s2.error_paths, summary.error_paths);
}

#[test]
fn bfs_and_dfs_discover_the_same_paths_in_different_orders() {
    let run = |bfs: bool| -> Vec<Vec<u8>> {
        let elf = assemble(TWO_COMPARES);
        let mut builder = Session::builder(Spec::rv32im()).binary(&elf);
        builder = if bfs {
            builder.strategy(Bfs::new())
        } else {
            builder.strategy(Dfs::new())
        };
        let mut session = builder.build().expect("builds");
        let inputs: Vec<Vec<u8>> = session
            .paths()
            .map(|r| r.expect("path runs").input)
            .collect();
        inputs
    };

    let dfs = run(false);
    let bfs = run(true);
    assert_eq!(dfs.len(), 4);
    assert_eq!(bfs.len(), 4);

    // Same path set. Concrete witness bytes differ across strategies
    // (unconstrained bytes get arbitrary model values), so canonicalize
    // each input to its branch-outcome pattern before comparing.
    let pattern = |input: &Vec<u8>| (input[0] < 100, input[1] < 100);
    let mut dfs_patterns: Vec<_> = dfs.iter().map(pattern).collect();
    let mut bfs_patterns: Vec<_> = bfs.iter().map(pattern).collect();
    dfs_patterns.sort();
    bfs_patterns.sort();
    assert_eq!(
        dfs_patterns, bfs_patterns,
        "strategies must agree on the set"
    );
    assert_eq!(dfs_patterns.len(), 4);
    dfs_patterns.dedup();
    assert_eq!(dfs_patterns.len(), 4, "all four branch patterns covered");

    // …different discovery order: after the all-zero seed path, DFS flips
    // the *deepest* branch (second byte) first, BFS the *shallowest*
    // (first byte).
    assert_ne!(dfs, bfs, "selection policy must change the order");
    assert_eq!(dfs[0], vec![0, 0]);
    assert_eq!(bfs[0], vec![0, 0]);
    assert!(
        dfs[1][0] < 100 && dfs[1][1] >= 100,
        "dfs flips the deepest branch first: {:?}",
        dfs[1]
    );
    assert!(
        bfs[1][0] >= 100,
        "bfs flips the shallowest branch first: {:?}",
        bfs[1]
    );
}

#[test]
fn random_restart_and_alternate_backends_reproduce_quickstart_counts() {
    // The acceptance bar: quickstart explores 2 paths with 1 error path,
    // whatever the strategy or backend.
    let elf = assemble(QUICKSTART_DIVU);
    let strategies: [fn() -> Box<dyn binsym_repro::binsym::PathStrategy>; 3] = [
        || Box::new(Dfs::new()),
        || Box::new(Bfs::new()),
        || Box::new(RandomRestart::with_seed(7)),
    ];
    for make in strategies {
        for fresh in [false, true] {
            let backend = if fresh {
                BitblastBackend::fresh_per_query()
            } else {
                BitblastBackend::new()
            };
            let s = Session::builder(Spec::rv32im())
                .binary(&elf)
                .strategy(make())
                .backend(backend)
                .build()
                .expect("builds")
                .run_all()
                .expect("explores");
            assert_eq!(s.paths, 2, "quickstart has 2 paths");
            assert_eq!(s.error_paths.len(), 1, "and 1 error path");
            let y = u32::from_le_bytes(s.error_paths[0].input[..4].try_into().unwrap());
            assert_eq!(y, 0);
        }
    }
}

#[test]
fn parallel_builder_reproduces_quickstart_and_finds_the_witness() {
    // The same builder grows the sharded session; the divu bug's witness
    // (y == 0) is the unique model, so even the input bytes must match
    // the sequential run's.
    let elf = assemble(QUICKSTART_DIVU);
    let mut session = Session::builder(Spec::rv32im())
        .binary(&elf)
        .workers(2)
        .build_parallel()
        .expect("builds");
    let s = session.run_all().expect("explores");
    assert_eq!(s.paths, 2, "quickstart has 2 paths");
    assert_eq!(s.error_paths.len(), 1, "and 1 error path");
    let y = u32::from_le_bytes(s.error_paths[0].input[..4].try_into().unwrap());
    assert_eq!(y, 0);
    // The merged record stream is available, in canonical order.
    assert_eq!(session.records().len(), 2);
    assert!(session.records().iter().any(|r| r.is_error()));
}

#[test]
fn smtlib_dump_backend_streams_replayable_scripts() {
    let elf = assemble(QUICKSTART_DIVU);
    let backend = SmtLibDump::new();
    let scripts = backend.scripts();
    let s = Session::builder(Spec::rv32im())
        .binary(&elf)
        .backend(backend)
        .build()
        .expect("builds")
        .run_all()
        .expect("explores");
    assert_eq!(s.paths, 2);
    assert_eq!(scripts.len() as u64, s.solver_checks);
    let all = scripts.snapshot();
    assert!(
        all.iter()
            .any(|q| q.contains("bvudiv") && q.contains("bvult")),
        "the Fig. 2 divu query shape must appear in the dump"
    );
}
